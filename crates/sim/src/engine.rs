//! The per-run simulation state and evaluation loop.

use crate::compile::{CompiledCircuit, Cone};
use ffr_netlist::FfId;

/// Number of independent simulation lanes packed into each net value.
pub const LANES: usize = 64;

/// Mutable state of one simulation run: a `u64` per net (64 lanes), the
/// flip-flop contents, and the current cycle number.
///
/// The lanes are fully independent scenarios sharing the same primary-input
/// stimulus (unless per-lane inputs are set explicitly); the fault-injection
/// engine diverges lanes by XOR-flipping flip-flop bits.
#[derive(Debug, Clone)]
pub struct SimState {
    values: Vec<u64>,
    scratch: Vec<u64>,
    cycle: u64,
}

impl SimState {
    /// Fresh state at cycle 0 with every flip-flop at its power-on value
    /// (broadcast to all lanes) and all other nets at 0.
    pub fn new(cc: &CompiledCircuit) -> SimState {
        let mut s = SimState {
            values: vec![0u64; cc.num_nets],
            scratch: vec![0u64; cc.num_ffs()],
            cycle: 0,
        };
        for (i, &q) in cc.ff_q.iter().enumerate() {
            s.values[q as usize] = if cc.ff_init[i] { !0 } else { 0 };
        }
        s
    }

    /// Current cycle number (increments on [`SimState::tick`]).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Overwrite the cycle counter (used when resuming from a journal).
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Drive primary input `pi_index` with the same value on all lanes.
    pub fn set_input(&mut self, cc: &CompiledCircuit, pi_index: usize, value: bool) {
        self.values[cc.pi_nets[pi_index] as usize] = if value { !0 } else { 0 };
    }

    /// Drive primary input `pi_index` with a per-lane bit pattern.
    pub fn set_input_lanes(&mut self, cc: &CompiledCircuit, pi_index: usize, word: u64) {
        self.values[cc.pi_nets[pi_index] as usize] = word;
    }

    /// Evaluate all combinational logic for the current inputs and
    /// flip-flop state.
    pub fn eval(&mut self, cc: &CompiledCircuit) {
        Self::eval_ops(&mut self.values, &cc.ops);
    }

    fn eval_ops(v: &mut [u64], ops: &[crate::compile::Op]) {
        for op in ops {
            let a = v[op.a as usize];
            let b = v[op.b as usize];
            let c = v[op.c as usize];
            v[op.out as usize] = op.kind.eval(a, b, c);
        }
    }

    /// Evaluate combinational logic while forcing a transient XOR onto one
    /// net (a Single-Event Transient on the driving gate's output).
    ///
    /// Convenience wrapper that compiles the net into a
    /// [`FaultSite`](crate::FaultSite) first; campaigns that force the
    /// same net repeatedly should compile once with
    /// [`CompiledCircuit::fault_site`] and call
    /// [`SimState::eval_forced_site`].
    pub fn eval_forced(&mut self, cc: &CompiledCircuit, net: ffr_netlist::NetId, mask: u64) {
        self.eval_forced_site(cc, cc.fault_site(net), mask)
    }

    /// Evaluate combinational logic while forcing a transient XOR onto a
    /// pre-compiled [`FaultSite`](crate::FaultSite).
    ///
    /// The flip is applied in topological position, so downstream logic in
    /// the same cycle observes the disturbed value; the effect lasts for
    /// this evaluation only. The op list is split at the forced op, so the
    /// evaluation runs at full [`SimState::eval`] speed on both sides of
    /// the split instead of testing every op against the target.
    pub fn eval_forced_site(&mut self, cc: &CompiledCircuit, site: crate::FaultSite, mask: u64) {
        let v = &mut self.values;
        match site.driver {
            // A forced primary input / FF output is flipped before the ops
            // run (the flip persists until the driver overwrites it: the
            // next input frame or clock edge).
            None => {
                v[site.target as usize] ^= mask;
                Self::eval_ops(v, &cc.ops);
            }
            Some(driver) => {
                let driver = driver as usize;
                let (before, rest) = cc.ops.split_at(driver);
                Self::eval_ops(v, before);
                let op = &rest[0];
                let a = v[op.a as usize];
                let b = v[op.b as usize];
                let c = v[op.c as usize];
                v[op.out as usize] = op.kind.eval(a, b, c) ^ mask;
                Self::eval_ops(v, &rest[1..]);
            }
        }
    }

    /// Reset the state in place to the power-on values of
    /// [`SimState::new`], reusing the allocations. Batch loops that
    /// recycle one state across batches call this before restoring a
    /// journal entry so leftover values (e.g. a forced source net) cannot
    /// leak into the next batch.
    pub fn reset(&mut self, cc: &CompiledCircuit) {
        self.values.fill(0);
        for (i, &q) in cc.ff_q.iter().enumerate() {
            self.values[q as usize] = if cc.ff_init[i] { !0 } else { 0 };
        }
        self.cycle = 0;
    }

    /// Evaluate only the combinational logic inside a fan-out cone.
    ///
    /// Boundary nets must hold their golden values for the current cycle
    /// (see [`SimState::load_boundary`]); everything outside the cone is
    /// untouched and must not be read.
    pub fn eval_cone(&mut self, cone: &Cone) {
        Self::eval_ops(&mut self.values, &cone.ops);
    }

    /// Cone-restricted [`SimState::eval_forced_site`]: evaluate the cone
    /// while XOR-forcing the cone's root net.
    ///
    /// Gate-output roots split the cone op list at the driving op; source
    /// roots (primary inputs, flip-flop Q nets) are flipped in place
    /// before the cone ops run — for a boundary-loaded source root the
    /// flip lasts exactly one cycle, because the next
    /// [`SimState::load_boundary`] restores the golden value, mirroring
    /// how the full evaluation's driver overwrites it.
    pub fn eval_forced_cone(&mut self, cone: &Cone, mask: u64) {
        let v = &mut self.values;
        match cone.forced_split {
            None => {
                v[cone.root as usize] ^= mask;
                Self::eval_ops(v, &cone.ops);
            }
            Some(split) => {
                let (before, rest) = cone.ops.split_at(split as usize);
                Self::eval_ops(v, before);
                let op = &rest[0];
                let a = v[op.a as usize];
                let b = v[op.b as usize];
                let c = v[op.c as usize];
                v[op.out as usize] = op.kind.eval(a, b, c) ^ mask;
                Self::eval_ops(v, &rest[1..]);
            }
        }
    }

    /// Cone-restricted [`SimState::tick`]: only the cone's flip-flops
    /// capture their data inputs. Sound because flip-flops outside the
    /// cone hold golden values that the cone never reads directly — cone
    /// ops read them through boundary-net loads instead.
    pub fn tick_cone(&mut self, cone: &Cone) {
        for (i, &d) in cone.ff_d.iter().enumerate() {
            self.scratch[i] = self.values[d as usize];
        }
        for (i, &q) in cone.ff_q.iter().enumerate() {
            self.values[q as usize] = self.scratch[i];
        }
        self.cycle += 1;
    }

    /// Broadcast the golden values of the cone's boundary nets for one
    /// cycle, from a [`NetJournal`](crate::NetJournal) row.
    ///
    /// Must be called before [`SimState::eval_cone`] every cycle: it
    /// supplies the primary inputs, upstream gate outputs and non-cone
    /// flip-flop values the cone reads, so the cone loop needs no
    /// stimulus replay at all.
    pub fn load_boundary(&mut self, cone: &Cone, row: &[u64]) {
        for &n in &cone.boundary {
            let bit = (row[(n / 64) as usize] >> (n % 64)) & 1;
            self.values[n as usize] = bit.wrapping_neg();
        }
    }

    /// Load the cone flip-flops from a packed full-circuit state
    /// (indexed by global flip-flop index), broadcasting each bit to all
    /// lanes — the cone-scoped [`SimState::load_ff_state_broadcast`].
    pub fn load_cone_state_broadcast(&mut self, cone: &Cone, packed: &[u64]) {
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (packed[ff / 64] >> (ff % 64)) & 1;
            self.values[cone.ff_q[k] as usize] = bit.wrapping_neg();
        }
    }

    /// Cone-scoped [`SimState::diff_lanes`]: lanes whose **cone**
    /// flip-flop state differs from the packed golden state (indexed by
    /// global flip-flop index).
    ///
    /// Equivalent to the full diff for single-fault batches — flip-flops
    /// outside the fan-out cone can never deviate from golden — while
    /// costing O(|cone FFs|) instead of O(all FFs) per cycle.
    pub fn diff_lanes_cone(&self, cone: &Cone, packed: &[u64]) -> u64 {
        let mut diff = 0u64;
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (packed[ff / 64] >> (ff % 64)) & 1;
            diff |= self.values[cone.ff_q[k] as usize] ^ bit.wrapping_neg();
        }
        diff
    }

    /// Cone-scoped [`SimState::pack_ff_state`]: overwrite the cone
    /// flip-flops' bits of a packed full-circuit state with lane `lane`'s
    /// values, leaving non-cone bits untouched.
    ///
    /// Seeding `out` with a golden journal row therefore reconstructs the
    /// full faulty state of the lane, since non-cone flip-flops are
    /// golden by construction.
    pub fn pack_ff_state_cone(&self, cone: &Cone, lane: usize, out: &mut [u64]) {
        debug_assert!(lane < LANES);
        for (k, &ff) in cone.ffs.iter().enumerate() {
            let ff = ff as usize;
            let bit = (self.values[cone.ff_q[k] as usize] >> lane) & 1;
            out[ff / 64] = (out[ff / 64] & !(1u64 << (ff % 64))) | (bit << (ff % 64));
        }
    }

    /// Pack the lane-`lane` value of **every net** into `out` (one bit
    /// per net). This is the capture primitive of
    /// [`NetJournal`](crate::NetJournal).
    pub fn pack_net_state(&self, lane: usize, out: &mut Vec<u64>) {
        debug_assert!(lane < LANES);
        out.clear();
        out.resize(self.values.len().div_ceil(64), 0);
        for (n, &w) in self.values.iter().enumerate() {
            out[n / 64] |= ((w >> lane) & 1) << (n % 64);
        }
    }

    /// Advance one clock edge: every flip-flop captures its data input.
    ///
    /// Call [`SimState::eval`] first so data inputs are up to date.
    pub fn tick(&mut self, cc: &CompiledCircuit) {
        // Two passes: capture all D values first so FF-to-FF shift paths
        // (Q wired straight to the next D) behave like real hardware.
        for (i, &d) in cc.ff_d.iter().enumerate() {
            self.scratch[i] = self.values[d as usize];
        }
        for (i, &q) in cc.ff_q.iter().enumerate() {
            self.values[q as usize] = self.scratch[i];
        }
        self.cycle += 1;
    }

    /// XOR-flip the stored value of a flip-flop on the lanes selected by
    /// `mask`. This models a Single-Event Upset.
    ///
    /// Combinational logic is *not* re-evaluated; call [`SimState::eval`]
    /// afterwards (the fault engine flips before the evaluation of the
    /// injection cycle).
    pub fn flip_ff(&mut self, cc: &CompiledCircuit, ff: FfId, mask: u64) {
        self.values[cc.ff_q[ff.index()] as usize] ^= mask;
    }

    /// Current 64-lane word stored in a flip-flop.
    pub fn ff_word(&self, cc: &CompiledCircuit, ff: FfId) -> u64 {
        self.values[cc.ff_q[ff.index()] as usize]
    }

    /// Current 64-lane word on primary output `po_index`.
    pub fn output_word(&self, cc: &CompiledCircuit, po_index: usize) -> u64 {
        self.values[cc.po_nets[po_index] as usize]
    }

    /// Current 64-lane word on an arbitrary net.
    pub fn net_word(&self, net: ffr_netlist::NetId) -> u64 {
        self.values[net.index()]
    }

    /// Pack the lane-`lane` flip-flop state into `out` (one bit per FF).
    ///
    /// `out` is resized to [`CompiledCircuit::ff_words`].
    pub fn pack_ff_state(&self, cc: &CompiledCircuit, lane: usize, out: &mut Vec<u64>) {
        debug_assert!(lane < LANES);
        out.clear();
        out.resize(cc.ff_words(), 0);
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (self.values[q as usize] >> lane) & 1;
            out[i / 64] |= bit << (i % 64);
        }
    }

    /// Load a packed single-scenario flip-flop state, broadcasting each bit
    /// to all 64 lanes. Used to restart simulation from a golden journal
    /// entry.
    pub fn load_ff_state_broadcast(&mut self, cc: &CompiledCircuit, packed: &[u64]) {
        debug_assert_eq!(packed.len(), cc.ff_words());
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (packed[i / 64] >> (i % 64)) & 1;
            self.values[q as usize] = if bit == 1 { !0 } else { 0 };
        }
    }

    /// Lanes whose flip-flop state differs from the packed golden state.
    ///
    /// Returns a 64-bit mask with bit `l` set iff lane `l` differs from
    /// `packed` in at least one flip-flop. The fault engine uses this for
    /// early convergence detection: a lane whose state has returned to
    /// golden can never diverge again (the stimulus is shared).
    pub fn diff_lanes(&self, cc: &CompiledCircuit, packed: &[u64]) -> u64 {
        let mut diff = 0u64;
        for (i, &q) in cc.ff_q.iter().enumerate() {
            let bit = (packed[i / 64] >> (i % 64)) & 1;
            let golden = bit.wrapping_neg(); // 0 -> 0x0, 1 -> all ones
            diff |= self.values[q as usize] ^ golden;
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;

    fn counter4() -> CompiledCircuit {
        let mut b = NetlistBuilder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 4);
        let next = b.inc(&r.q());
        b.connect_en(&r, &en, &next).unwrap();
        b.output("value", &r.q());
        CompiledCircuit::compile(b.finish().unwrap()).unwrap()
    }

    fn read_count(cc: &CompiledCircuit, s: &SimState, lane: usize) -> u64 {
        (0..4).fold(0u64, |acc, i| {
            acc | (((s.output_word(cc, i) >> lane) & 1) << i)
        })
    }

    #[test]
    fn counter_counts() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for expected in 0..20u64 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), expected % 16);
            assert_eq!(read_count(&cc, &s, 63), expected % 16, "lanes agree");
            s.tick(&cc);
        }
        assert_eq!(s.cycle(), 20);
    }

    #[test]
    fn enable_holds_value() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for _ in 0..5 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            s.tick(&cc);
        }
        for _ in 0..3 {
            s.set_input(&cc, 0, false);
            s.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), 5);
            s.tick(&cc);
        }
    }

    #[test]
    fn flip_diverges_single_lane_and_convergence_detected() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        s.set_input(&cc, 0, true);
        s.eval(&cc);
        s.tick(&cc);
        // Flip bit 1 of the counter on lane 7 only.
        s.flip_ff(&cc, FfId::from_index(1), 1u64 << 7);
        s.set_input(&cc, 0, true);
        s.eval(&cc);
        let lane0 = read_count(&cc, &s, 0);
        let lane7 = read_count(&cc, &s, 7);
        assert_eq!(lane0 ^ lane7, 0b0010);

        // Golden state is lane 0's packed state; lane 7 must differ.
        let mut golden = Vec::new();
        s.pack_ff_state(&cc, 0, &mut golden);
        let diff = s.diff_lanes(&cc, &golden);
        assert_eq!(diff, 1u64 << 7);
    }

    #[test]
    fn pack_and_broadcast_round_trip() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        for _ in 0..9 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            s.tick(&cc);
        }
        let mut packed = Vec::new();
        s.pack_ff_state(&cc, 0, &mut packed);
        let mut s2 = SimState::new(&cc);
        s2.load_ff_state_broadcast(&cc, &packed);
        s2.set_cycle(s.cycle());
        assert_eq!(s2.diff_lanes(&cc, &packed), 0);
        // Continuing both runs produces identical outputs.
        for _ in 0..5 {
            s.set_input(&cc, 0, true);
            s2.set_input(&cc, 0, true);
            s.eval(&cc);
            s2.eval(&cc);
            assert_eq!(read_count(&cc, &s, 0), read_count(&cc, &s2, 0));
            s.tick(&cc);
            s2.tick(&cc);
        }
    }

    #[test]
    fn per_lane_inputs() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        // Enable only lanes 0..32.
        for _ in 0..4 {
            s.set_input_lanes(&cc, 0, 0x0000_0000_FFFF_FFFF);
            s.eval(&cc);
            s.tick(&cc);
        }
        s.eval(&cc);
        assert_eq!(read_count(&cc, &s, 0), 4);
        assert_eq!(read_count(&cc, &s, 40), 0);
    }

    #[test]
    fn eval_forced_disturbs_gate_output_transiently() {
        let cc = counter4();
        let mut s = SimState::new(&cc);
        // Golden step for reference.
        let mut golden = SimState::new(&cc);
        for _ in 0..3 {
            s.set_input(&cc, 0, true);
            golden.set_input(&cc, 0, true);
            s.eval(&cc);
            golden.eval(&cc);
            s.tick(&cc);
            golden.tick(&cc);
        }
        // Force the D input of counter bit 0 on lane 5 for one cycle; the
        // transient is latched and the lane diverges afterwards.
        let d_net = cc.netlist().ff_d_net(FfId::from_index(0));
        s.set_input(&cc, 0, true);
        golden.set_input(&cc, 0, true);
        s.eval_forced(&cc, d_net, 1u64 << 5);
        golden.eval(&cc);
        // During the forced cycle, lane 5 sees the flipped value on d.
        assert_eq!(
            s.net_word(d_net) ^ golden.net_word(d_net),
            1u64 << 5,
            "transient visible only on lane 5"
        );
        s.tick(&cc);
        golden.tick(&cc);
        s.eval(&cc);
        golden.eval(&cc);
        // The latched disturbance persists in the counter value.
        assert_ne!(
            read_count(&cc, &s, 5),
            read_count(&cc, &golden, 5),
            "latched SET diverges lane 5"
        );
        assert_eq!(read_count(&cc, &s, 0), read_count(&cc, &golden, 0));
    }

    #[test]
    fn eval_forced_on_primary_input_net() {
        // Forcing a source net (no driving op) takes the pre-flip branch.
        let cc = counter4();
        let pi_net = cc.netlist().primary_inputs()[0];
        let mut s = SimState::new(&cc);
        s.set_input(&cc, 0, false); // enable low everywhere
        s.eval_forced(&cc, pi_net, 1u64 << 9); // but forced high on lane 9
        s.tick(&cc);
        s.eval(&cc);
        assert_eq!(read_count(&cc, &s, 9), 1, "forced lane counted");
        assert_eq!(read_count(&cc, &s, 0), 0, "other lanes held");
    }

    #[test]
    fn initial_value_respected() {
        let mut b = NetlistBuilder::new("i");
        let a = b.input("a", 2);
        let r = b.reg_init("r", 2, 0b10);
        b.connect(&r, &a).unwrap();
        b.output("o", &r.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        s.eval(&cc);
        assert_eq!(s.output_word(&cc, 0), 0);
        assert_eq!(s.output_word(&cc, 1), !0);
    }
}
