//! Levelized, bit-parallel gate-level logic simulation.
//!
//! This crate is the workspace's substitute for the commercial logic
//! simulator the paper used. It compiles a
//! [`Netlist`](ffr_netlist::Netlist) into a flat, topologically ordered
//! operation list and evaluates it cycle by cycle with **64 independent
//! simulation lanes** packed into each `u64` word (PROOFS-style
//! bit-parallelism). The fault-injection engine uses the lanes to simulate
//! 64 fault scenarios at once; plain functional simulation uses lane 0.
//!
//! Main entry points:
//!
//! * [`CompiledCircuit::compile`] — levelize and compile a netlist,
//! * [`SimState`] — per-run state: net values, flip-flop contents, cycle,
//! * [`run_testbench`] — drive a [`Stimulus`] against a circuit while
//!   recording an [`OutputTrace`] and per-flip-flop [`ActivityTrace`],
//! * [`GoldenRun`] — reference run artifacts consumed by `ffr-fault`:
//!   per-cycle flip-flop state journal, checkpoints, output trace,
//! * [`Cone`] / [`NetJournal`] — cone-restricted differential fault
//!   simulation: evaluate only the injection point's fan-out cone and
//!   broadcast golden boundary-net values from an all-nets journal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod compile;
mod engine;
mod golden;
mod testbench;
pub mod vcd;

pub use activity::ActivityTrace;
pub use compile::{CompiledCircuit, Cone, FaultSite, SimError};
pub use engine::{FrontierScratch, SimState};
pub use golden::{Checkpoint, GoldenRun, NetJournal, StateJournal};
pub use testbench::{
    run_testbench, InputFrame, LaneView, OutputTrace, Stimulus, TestbenchRun, WatchList,
};
