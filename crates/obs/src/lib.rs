//! Dependency-free structured telemetry for the campaign stack.
//!
//! Two independent facilities share this crate:
//!
//! * a **global leveled stderr logger** ([`log`], the [`error!`]/[`warn!`]/
//!   [`info!`]/[`debug!`] macros) controlled by the `FFR_LOG` environment
//!   variable and the CLI's `--quiet`/`-v` flags — human-facing progress
//!   chatter, never machine-parsed, never on stdout;
//! * a **per-process event [`Recorder`]** that appends structured JSONL
//!   records — leveled events, timed spans, monotonic counters and
//!   log-bucket latency histograms — to a per-worker file under
//!   `<campaign>/telemetry/`. The telemetry directory is *outside* the
//!   artifact store and the campaign fingerprint, so recording has no
//!   effect on byte-identical resume/merge invariants.
//!
//! A disabled [`Recorder`] is a `None` behind one pointer: every call is a
//! single branch, so hot loops can be instrumented unconditionally.
//!
//! # Event schema
//!
//! Every line is one self-contained JSON object (see
//! `docs/OBSERVABILITY.md` for the full reference):
//!
//! ```text
//! {"ts_ms":1754550000000,"worker":"w1","kind":"event","level":"debug",
//!  "name":"lease.claim","fields":{"range_start":0,"range_end":16}}
//! {"ts_ms":...,"worker":"w1","kind":"span","name":"phase.golden","dur_us":52311}
//! {"ts_ms":...,"worker":"w1","kind":"counter","name":"injections","value":4080}
//! {"ts_ms":...,"worker":"w1","kind":"hist","name":"checkpoint.flush_us",
//!  "count":12,"sum_us":8400,"buckets":[[9,3],[10,9]]}
//! ```
//!
//! Records are appended with a single `write` of the whole line, so a
//! SIGKILLed writer leaves at most one truncated final line — readers
//! skip unparseable lines instead of failing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

// ---------------------------------------------------------------------------
// Levels and the global stderr logger
// ---------------------------------------------------------------------------

/// Severity of a log line or telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Degraded-but-continuing conditions.
    Warn = 1,
    /// Progress milestones (the default).
    Info = 2,
    /// Per-lease / per-flush detail.
    Debug = 3,
}

impl Level {
    /// The level's lower-case name (as it appears in event records).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (`error|warn|info|debug`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Global stderr log threshold (a [`Level`] discriminant).
static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the global stderr log threshold.
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global stderr log threshold.
pub fn log_level() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        3 => Level::Debug,
        _ => Level::Info,
    }
}

/// Initialise the global threshold from the `FFR_LOG` environment
/// variable (`error|warn|info|debug`); unset or unparseable values keep
/// the default (`info`).
pub fn init_log_from_env() {
    if let Some(level) = std::env::var("FFR_LOG").ok().and_then(|s| Level::parse(&s)) {
        set_log_level(level);
    }
}

/// `true` when `level` passes the global threshold.
pub fn log_enabled(level: Level) -> bool {
    level <= log_level()
}

/// Write one line to stderr if `level` passes the global threshold.
pub fn log(level: Level, message: &str) {
    if log_enabled(level) {
        eprintln!("{message}");
    }
}

/// Log at [`Level::Error`] (format-string arguments like `println!`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log($crate::Level::Error, &format!($($arg)*)) };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log($crate::Level::Warn, &format!($($arg)*)) };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log($crate::Level::Info, &format!($($arg)*)) };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log($crate::Level::Debug, &format!($($arg)*)) };
}

// ---------------------------------------------------------------------------
// Field values and JSON encoding
// ---------------------------------------------------------------------------

/// A structured field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Append a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    use std::fmt::Write as _;
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

fn push_fields(out: &mut String, fields: &[(&str, FieldValue)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// Log-bucket histogram
// ---------------------------------------------------------------------------

/// Bucket count of a log-bucket [`Histogram`] (exponent up to 2^63 µs).
const HIST_BUCKETS: usize = 64;

/// A fixed log-bucket latency histogram: bucket `i` counts observations
/// with `value_us` in `(2^(i-1), 2^i]` (bucket 0 counts zeros and ones).
/// Buckets make histograms from different workers **mergeable** by plain
/// addition, which is what `ffr stats` relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index of a microsecond observation.
pub fn bucket_of(value_us: u64) -> usize {
    (64 - value_us.leading_zeros() as usize).saturating_sub(1)
}

/// Upper bound (µs) of bucket `i` — the value reported for percentiles.
pub fn bucket_upper_us(i: usize) -> u64 {
    1u64 << i.min(63)
}

impl Histogram {
    /// Record one observation (µs).
    pub fn observe(&mut self, value_us: u64) {
        self.buckets[bucket_of(value_us)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_us);
        self.max = self.max.max(value_us);
    }

    /// Merge another histogram into this one (plain bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    /// Largest observation (µs).
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean observation (µs), or 0 when empty.
    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile
    /// observation (`q` in `[0, 1]`), or 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_us(i);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// Reconstruct a histogram from sparse `(bucket_index, count)` pairs
    /// plus the recorded sum/max (as read back from a `hist` record).
    pub fn from_sparse(buckets: &[(usize, u64)], sum_us: u64, max_us: u64) -> Histogram {
        let mut h = Histogram::default();
        for &(i, n) in buckets {
            if i < HIST_BUCKETS {
                h.buckets[i] += n;
                h.count += n;
            }
        }
        h.sum = sum_us;
        h.max = max_us;
        h
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

struct Inner {
    worker: String,
    sink: Mutex<File>,
    counters: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

/// A cheap, cloneable handle to a per-process telemetry sink.
///
/// A disabled recorder ([`Recorder::disabled`]) is `None` behind one
/// pointer: every method is a single branch and no clock is read, so hot
/// loops can call it unconditionally.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Recorder({})", inner.worker),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// `true` when events are actually written.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open (creating the directory if needed) an append-mode JSONL sink
    /// at `<dir>/<worker>.jsonl`.
    ///
    /// If a previous process of the same worker died mid-line, a newline
    /// is appended first so the truncated line stays isolated.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation / open failures.
    pub fn to_dir(dir: &Path, worker: &str) -> io::Result<Recorder> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{worker}.jsonl"));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        if file.metadata()?.len() > 0 {
            let mut last = [0u8; 1];
            file.seek(SeekFrom::End(-1))?;
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
            }
        }
        Ok(Recorder(Some(Arc::new(Inner {
            worker: worker.to_string(),
            sink: Mutex::new(file),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }))))
    }

    /// Open a sink under `<session_dir>/telemetry/` for `worker`, unless
    /// telemetry is disabled via `FFR_TELEMETRY=0`. Failure to open is
    /// never fatal: it degrades to a disabled recorder with a warning.
    pub fn for_session(session_dir: &Path, worker: &str) -> Recorder {
        if std::env::var("FFR_TELEMETRY").as_deref() == Ok("0") {
            return Recorder::disabled();
        }
        let dir = telemetry_dir(session_dir);
        match Recorder::to_dir(&dir, worker) {
            Ok(rec) => rec,
            Err(e) => {
                crate::warn!(
                    "[ffr] telemetry disabled: cannot open {}: {e}",
                    dir.display()
                );
                Recorder::disabled()
            }
        }
    }

    /// The worker id of the sink, when enabled.
    pub fn worker(&self) -> Option<&str> {
        self.0.as_deref().map(|inner| inner.worker.as_str())
    }

    fn write_line(&self, kind: &str, name: &str, extra: impl FnOnce(&mut String)) {
        let Some(inner) = &self.0 else { return };
        let ts_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(128);
        use std::fmt::Write as _;
        let _ = write!(line, "{{\"ts_ms\":{ts_ms},\"worker\":");
        push_json_str(&mut line, &inner.worker);
        let _ = write!(line, ",\"kind\":\"{kind}\",\"name\":");
        push_json_str(&mut line, name);
        extra(&mut line);
        line.push_str("}\n");
        if let Ok(mut sink) = inner.sink.lock() {
            let _ = sink.write_all(line.as_bytes());
        }
    }

    /// Record a leveled structured event.
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        if self.0.is_none() {
            return;
        }
        self.write_line("event", name, |line| {
            line.push_str(",\"level\":\"");
            line.push_str(level.name());
            line.push('"');
            push_fields(line, fields);
        });
    }

    /// Start a timed span; the record is emitted when the returned
    /// [`Span`] is dropped (or [`Span::end`]ed).
    pub fn span(&self, name: &str) -> Span {
        Span {
            rec: self.clone(),
            name: name.to_string(),
            start: self.0.as_ref().map(|_| Instant::now()),
            fields: Vec::new(),
        }
    }

    /// Time a closure under a named span.
    pub fn scope<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let span = self.span(name);
        let out = f();
        span.end();
        out
    }

    /// Add `delta` to the named monotonic counter (emitted by
    /// [`Recorder::finish`]).
    pub fn count(&self, name: &str, delta: u64) {
        let Some(inner) = &self.0 else { return };
        if let Ok(mut counters) = inner.counters.lock() {
            *counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Record a latency observation (µs) into the named histogram
    /// (emitted by [`Recorder::finish`]).
    pub fn observe_us(&self, name: &str, value_us: u64) {
        let Some(inner) = &self.0 else { return };
        if let Ok(mut hists) = inner.hists.lock() {
            hists.entry(name.to_string()).or_default().observe(value_us);
        }
    }

    /// Emit the accumulated counters and histograms as `counter` / `hist`
    /// records and reset them. Call at the end of a session or worker
    /// run; a SIGKILLed process simply loses the aggregates (the events
    /// and spans already on disk survive).
    pub fn finish(&self) {
        let Some(inner) = &self.0 else { return };
        let counters: Vec<(String, u64)> = match inner.counters.lock() {
            Ok(mut c) => std::mem::take(&mut *c).into_iter().collect(),
            Err(_) => Vec::new(),
        };
        for (name, value) in counters {
            self.write_line("counter", &name, |line| {
                use std::fmt::Write as _;
                let _ = write!(line, ",\"value\":{value}");
            });
        }
        let hists: Vec<(String, Histogram)> = match inner.hists.lock() {
            Ok(mut h) => std::mem::take(&mut *h).into_iter().collect(),
            Err(_) => Vec::new(),
        };
        for (name, hist) in hists {
            self.write_line("hist", &name, |line| {
                use std::fmt::Write as _;
                let _ = write!(
                    line,
                    ",\"count\":{},\"sum_us\":{},\"max_us\":{},\"buckets\":[",
                    hist.count(),
                    hist.sum_us(),
                    hist.max_us()
                );
                for (i, (bucket, n)) in hist.sparse_buckets().iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "[{bucket},{n}]");
                }
                line.push(']');
            });
        }
    }
}

/// The telemetry directory of a campaign session.
pub fn telemetry_dir(session_dir: &Path) -> PathBuf {
    session_dir.join("telemetry")
}

/// A running timed span (emits a `span` record on drop / [`Span::end`]).
pub struct Span {
    rec: Recorder,
    name: String,
    start: Option<Instant>,
    fields: Vec<(String, FieldValue)>,
}

impl Span {
    /// Attach a structured field to the span record.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key.to_string(), value.into()));
        }
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        let fields: Vec<(&str, FieldValue)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let name = std::mem::take(&mut self.name);
        self.rec.write_line("span", &name, |line| {
            use std::fmt::Write as _;
            let _ = write!(line, ",\"dur_us\":{dur_us}");
            push_fields(line, &fields);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffr_obs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.event(Level::Info, "x", &[("k", 1u64.into())]);
        rec.count("c", 5);
        rec.observe_us("h", 100);
        rec.scope("s", || ());
        rec.finish();
        assert_eq!(rec.worker(), None);
    }

    #[test]
    fn recorder_writes_one_json_line_per_record() {
        let dir = tmp_dir("lines");
        let rec = Recorder::to_dir(&dir, "w1").unwrap();
        rec.event(
            Level::Debug,
            "lease.claim",
            &[
                ("range_start", 0u64.into()),
                ("reclaim", false.into()),
                ("note", "a\"b\n".into()),
            ],
        );
        let mut span = rec.span("phase.golden");
        span.field("cached", true);
        span.end();
        rec.count("injections", 170);
        rec.count("injections", 30);
        rec.observe_us("flush_us", 100);
        rec.finish();

        let text = std::fs::read_to_string(dir.join("w1.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "event + span + counter + hist: {text}");
        assert!(lines[0].contains("\"kind\":\"event\""));
        assert!(lines[0].contains("\"name\":\"lease.claim\""));
        assert!(lines[0].contains("\"note\":\"a\\\"b\\n\""));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"dur_us\":"));
        assert!(lines[2].contains("\"kind\":\"counter\""));
        assert!(lines[2].contains("\"value\":200"));
        assert!(lines[3].contains("\"kind\":\"hist\""));
        assert!(lines[3].contains("\"count\":1"));
        // Every line is complete JSON (balanced braces, ends at newline).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn reopening_after_truncated_line_isolates_the_garbage() {
        let dir = tmp_dir("truncated");
        {
            let rec = Recorder::to_dir(&dir, "w1").unwrap();
            rec.event(Level::Info, "one", &[]);
        }
        // Simulate a SIGKILL mid-write: a partial line without newline.
        let path = dir.join("w1.jsonl");
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"ts_ms\":12,\"ki").unwrap();
        drop(file);
        // The resumed process appends on a fresh line.
        let rec = Recorder::to_dir(&dir, "w1").unwrap();
        rec.event(Level::Info, "two", &[]);
        drop(rec);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("{\"ts_ms\":12,\"ki"));
        assert!(lines[2].contains("\"name\":\"two\""));
    }

    #[test]
    fn histogram_buckets_merge_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_upper_us(0), 1);
        assert_eq!(bucket_upper_us(10), 1024);

        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [10, 20, 30] {
            a.observe(v);
        }
        for v in [1000, 2000] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum_us(), 3060);
        assert_eq!(a.max_us(), 2000);
        assert_eq!(a.mean_us(), 612);
        assert!(a.quantile_us(0.5) <= 32);
        assert!(a.quantile_us(0.95) >= 1024);

        let sparse = a.sparse_buckets();
        let back = Histogram::from_sparse(&sparse, a.sum_us(), a.max_us());
        assert_eq!(back, a);
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::Warn.name(), "warn");
    }
}
