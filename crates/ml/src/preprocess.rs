//! Feature scaling.
//!
//! Distance- and kernel-based models (k-NN, SVR, MLP) are sensitive to
//! feature ranges; the estimation flow standardizes features exactly like
//! scikit-learn's `StandardScaler` before fitting those models.

/// Zero-mean / unit-variance standardization, fit on training data only.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Unfitted scaler.
    pub fn new() -> StandardScaler {
        StandardScaler::default()
    }

    /// Learn per-column mean and standard deviation.
    ///
    /// Constant columns get a standard deviation of 1 so they map to 0.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged matrix.
    pub fn fit(&mut self, x: &[Vec<f64>]) {
        assert!(!x.is_empty(), "empty fit data");
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged matrix");
        let n = x.len() as f64;
        self.mean = (0..d)
            .map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n)
            .collect();
        self.std = (0..d)
            .map(|j| {
                let m = self.mean[j];
                let v = x.iter().map(|r| (r[j] - m) * (r[j] - m)).sum::<f64>() / n;
                let s = v.sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
    }

    /// Standardize a batch.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or dimensions mismatch.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_one(r)).collect()
    }

    /// Standardize one sample.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or dimensions mismatch.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "scaler dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(j, v)| (v - self.mean[j]) / self.std[j])
            .collect()
    }

    /// Fit then transform in one step.
    pub fn fit_transform(&mut self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.fit(x);
        self.transform(x)
    }
}

/// Min–max scaling to `[0, 1]`, fit on training data only.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMaxScaler {
    /// Unfitted scaler.
    pub fn new() -> MinMaxScaler {
        MinMaxScaler::default()
    }

    /// Learn per-column minimum and range.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged matrix.
    pub fn fit(&mut self, x: &[Vec<f64>]) {
        assert!(!x.is_empty(), "empty fit data");
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged matrix");
        self.min = (0..d)
            .map(|j| x.iter().map(|r| r[j]).fold(f64::INFINITY, f64::min))
            .collect();
        self.range = (0..d)
            .map(|j| {
                let max = x.iter().map(|r| r[j]).fold(f64::NEG_INFINITY, f64::max);
                let r = max - self.min[j];
                if r < 1e-12 {
                    1.0
                } else {
                    r
                }
            })
            .collect();
    }

    /// Scale one sample.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or dimensions mismatch.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.min.len(), "scaler dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(j, v)| (v - self.min[j]) / self.range[j])
            .collect()
    }

    /// Scale a batch.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or dimensions mismatch.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_one(r)).collect()
    }
}

/// A regressor wrapped with train-time feature standardization.
///
/// `fit` learns the scaler on the training features only, then fits the
/// inner model on standardized data; `predict` applies the same transform.
/// This is how the estimation flow feeds distance/kernel models (k-NN,
/// SVR, MLP) without leaking test statistics.
#[derive(Debug, Clone)]
pub struct ScaledRegressor<M> {
    scaler: StandardScaler,
    inner: M,
}

impl<M: crate::Regressor> ScaledRegressor<M> {
    /// Wrap `inner` with a standard scaler.
    pub fn new(inner: M) -> ScaledRegressor<M> {
        ScaledRegressor {
            scaler: StandardScaler::new(),
            inner,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: crate::Regressor> crate::Regressor for ScaledRegressor<M> {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let xs = self.scaler.fit_transform(x);
        self.inner.fit(&xs, y);
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        self.inner.predict_one(&self.scaler.transform_one(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distance, KnnRegressor, Regressor, WeightScheme};

    #[test]
    fn scaled_regressor_equalizes_feature_ranges() {
        // Feature 1 has a huge range and is pure noise; unscaled k-NN is
        // dominated by it, scaled k-NN recovers the signal in feature 0.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64, ((i * 37) % 100) as f64 * 1000.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let mut scaled = ScaledRegressor::new(KnnRegressor::new(
            3,
            Distance::Euclidean,
            WeightScheme::Uniform,
        ));
        scaled.fit(&x, &y);
        let err: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (scaled.predict_one(xi) - yi).abs())
            .sum::<f64>()
            / x.len() as f64;
        assert!(err < 1.5, "scaled knn mean error = {err}");
    }

    #[test]
    fn standard_scaler_statistics() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x);
        // Column 0: mean 3, std sqrt(8/3).
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        let var: f64 = col0.iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        // Constant column maps to zero.
        assert!(t.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn scaler_is_train_only() {
        let train = vec![vec![0.0], vec![10.0]];
        let mut s = StandardScaler::new();
        s.fit(&train);
        // A test point outside the training range extrapolates linearly.
        let out = s.transform_one(&[20.0]);
        assert!(out[0] > 2.0);
    }

    #[test]
    fn min_max_scaler_bounds() {
        let x = vec![vec![2.0], vec![4.0], vec![6.0]];
        let mut s = MinMaxScaler::new();
        s.fit(&x);
        let t = s.transform(&x);
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[2][0], 1.0);
        assert!((t[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut s = StandardScaler::new();
        s.fit(&[vec![1.0, 2.0]]);
        let _ = s.transform_one(&[1.0]);
    }
}
