//! Regression evaluation metrics (§III-C of the paper).
//!
//! All functions take the true targets `y` and predictions `y_hat` and
//! panic on length mismatch or empty input, matching the paper's
//! definitions exactly (equations 1–5).

/// Mean Absolute Error (eq. 1); closer to zero is better.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(y: &[f64], y_hat: &[f64]) -> f64 {
    check(y, y_hat);
    y.iter().zip(y_hat).map(|(t, p)| (t - p).abs()).sum::<f64>() / y.len() as f64
}

/// Maximum Absolute Error (eq. 2); closer to zero is better.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn max_error(y: &[f64], y_hat: &[f64]) -> f64 {
    check(y, y_hat);
    y.iter()
        .zip(y_hat)
        .map(|(t, p)| (t - p).abs())
        .fold(0.0, f64::max)
}

/// Root Mean Squared Error (eq. 3); closer to zero is better.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(y: &[f64], y_hat: &[f64]) -> f64 {
    check(y, y_hat);
    (y.iter()
        .zip(y_hat)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y.len() as f64)
        .sqrt()
}

/// Explained Variance (eq. 4); best value 1.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn explained_variance(y: &[f64], y_hat: &[f64]) -> f64 {
    check(y, y_hat);
    let var_y = variance(y);
    if var_y == 0.0 {
        // Degenerate target: perfect iff the residual is also constant.
        let resid: Vec<f64> = y.iter().zip(y_hat).map(|(t, p)| t - p).collect();
        return if variance(&resid) == 0.0 { 1.0 } else { 0.0 };
    }
    let resid: Vec<f64> = y.iter().zip(y_hat).map(|(t, p)| t - p).collect();
    1.0 - variance(&resid) / var_y
}

/// Coefficient of determination R² (eq. 5); best value 1.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(y: &[f64], y_hat: &[f64]) -> f64 {
    check(y, y_hat);
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y.iter().zip(y_hat).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

fn variance(v: &[f64]) -> f64 {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64
}

fn check(y: &[f64], y_hat: &[f64]) {
    assert_eq!(y.len(), y_hat.len(), "metric input length mismatch");
    assert!(!y.is_empty(), "metric on empty input");
}

/// The five-score bundle reported for every model in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionScores {
    /// Mean Absolute Error.
    pub mae: f64,
    /// Maximum Absolute Error.
    pub max: f64,
    /// Root Mean Squared Error.
    pub rmse: f64,
    /// Explained Variance.
    pub ev: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl RegressionScores {
    /// Compute all five metrics.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn compute(y: &[f64], y_hat: &[f64]) -> RegressionScores {
        RegressionScores {
            mae: mae(y, y_hat),
            max: max_error(y, y_hat),
            rmse: rmse(y, y_hat),
            ev: explained_variance(y, y_hat),
            r2: r2(y, y_hat),
        }
    }

    /// Element-wise mean over several score bundles (cross-validation
    /// aggregation).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn mean(scores: &[RegressionScores]) -> RegressionScores {
        assert!(!scores.is_empty());
        let n = scores.len() as f64;
        RegressionScores {
            mae: scores.iter().map(|s| s.mae).sum::<f64>() / n,
            max: scores.iter().map(|s| s.max).sum::<f64>() / n,
            rmse: scores.iter().map(|s| s.rmse).sum::<f64>() / n,
            ev: scores.iter().map(|s| s.ev).sum::<f64>() / n,
            r2: scores.iter().map(|s| s.r2).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for RegressionScores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAE={:.3} MAX={:.3} RMSE={:.3} EV={:.3} R2={:.3}",
            self.mae, self.max, self.rmse, self.ev, self.r2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [0.1, 0.5, 0.9];
        let s = RegressionScores::compute(&y, &y);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.ev, 1.0);
        assert_eq!(s.r2, 1.0);
    }

    #[test]
    fn hand_computed_example() {
        let y = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mae(&y, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(max_error(&y, &p), 2.0);
        assert!((rmse(&y, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // R2: mean = 2, ss_tot = 2, ss_res = 4 -> 1 - 2 = -1.
        assert!((r2(&y, &p) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ev_differs_from_r2_under_bias() {
        // A constant offset hurts R² but not Explained Variance.
        let y = [1.0, 2.0, 3.0, 4.0];
        let p = [2.0, 3.0, 4.0, 5.0];
        assert!((explained_variance(&y, &p) - 1.0).abs() < 1e-12);
        assert!(r2(&y, &p) < 1.0);
    }

    #[test]
    fn mean_prediction_gives_zero_r2() {
        let y = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&y, &p).abs() < 1e-12);
        assert!(explained_variance(&y, &p).abs() < 1e-12);
    }

    #[test]
    fn constant_target_edge_case() {
        let y = [2.0, 2.0];
        assert_eq!(r2(&y, &[2.0, 2.0]), 1.0);
        assert_eq!(r2(&y, &[1.0, 3.0]), 0.0);
        assert_eq!(explained_variance(&y, &[3.0, 3.0]), 1.0);
    }

    #[test]
    fn score_averaging() {
        let a = RegressionScores {
            mae: 0.1,
            max: 1.0,
            rmse: 0.2,
            ev: 0.8,
            r2: 0.8,
        };
        let b = RegressionScores {
            mae: 0.3,
            max: 0.0,
            rmse: 0.4,
            ev: 0.6,
            r2: 0.4,
        };
        let m = RegressionScores::mean(&[a, b]);
        assert!((m.mae - 0.2).abs() < 1e-12);
        assert!((m.r2 - 0.6).abs() < 1e-12);
        let shown = m.to_string();
        assert!(shown.contains("R2=0.600"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let _ = rmse(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn score_bundle_on_empty_input_panics() {
        let _ = RegressionScores::compute(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn r2_length_mismatch_panics() {
        let _ = r2(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn constant_target_is_well_defined_for_every_metric() {
        // A constant target makes ss_tot / var(y) vanish; the guarded
        // definitions must stay finite: R² and EV are 1 for a perfect
        // (constant-residual) prediction and 0 otherwise, never NaN.
        let y = [0.3, 0.3, 0.3, 0.3];
        let cases: [&[f64]; 3] = [
            &[0.3, 0.3, 0.3, 0.3], // perfect
            &[0.5, 0.5, 0.5, 0.5], // constant bias
            &[0.0, 0.6, 0.0, 0.6], // scattered
        ];
        for p in cases {
            let s = RegressionScores::compute(&y, p);
            for v in [s.mae, s.max, s.rmse, s.ev, s.r2] {
                assert!(v.is_finite(), "non-finite score for {p:?}");
            }
        }
        assert_eq!(r2(&y, &y), 1.0);
        assert_eq!(r2(&y, cases[1]), 0.0);
        assert_eq!(r2(&y, cases[2]), 0.0);
        // EV sees through a pure constant bias even on a constant target.
        assert_eq!(explained_variance(&y, cases[1]), 1.0);
        assert_eq!(explained_variance(&y, cases[2]), 0.0);
    }
}
