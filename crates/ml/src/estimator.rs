//! The common regression-model interface.

/// A supervised regression model.
///
/// The interface mirrors scikit-learn's estimator API: `fit` consumes a
/// design matrix (`x[i]` is sample `i`'s feature vector) and targets,
/// `predict` maps feature vectors to estimates. Models are `fit` at most
/// once; fitting again replaces the previous state.
pub trait Regressor {
    /// Learn the model parameters from training data.
    ///
    /// # Panics
    ///
    /// Implementations panic on empty training sets or ragged feature
    /// matrices — those are programming errors of the caller.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predict the target for one feature vector.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predict targets for a batch of feature vectors.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|row| self.predict_one(row)).collect()
    }
}

impl Regressor for Box<dyn Regressor> {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        (**self).fit(x, y)
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        (**self).predict_one(x)
    }

    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        (**self).predict(x)
    }
}

impl Regressor for Box<dyn Regressor + Send + Sync> {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        (**self).fit(x, y)
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        (**self).predict_one(x)
    }

    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        (**self).predict(x)
    }
}

/// Fit a fresh model on `(x, y)` and predict `x_predict` in one step — the
/// train-on-measured / predict-the-rest facade the estimation pipeline is
/// built on.
///
/// The model is consumed: the facade guarantees a *fresh* fit (no state
/// leaks from a previous `fit`), and every stochastic model in this crate
/// takes its seed at construction time, so the result is a pure function
/// of `(model parameters, seed, x, y, x_predict)` — reruns are
/// bit-identical, which the campaign CLI relies on for byte-identical
/// estimation reports.
///
/// ```
/// use ffr_ml::{fit_predict, Distance, KnnRegressor, WeightScheme};
///
/// // Train on measured (feature, FDR) pairs, predict unmeasured rows.
/// let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
/// let y = vec![0.1, 0.9, 0.5];
/// let unmeasured = vec![vec![0.9, 0.1]];
///
/// let knn = || KnnRegressor::new(1, Distance::Manhattan, WeightScheme::Uniform);
/// let predicted = fit_predict(knn(), &x, &y, &unmeasured);
/// assert_eq!(predicted, vec![0.9]); // nearest neighbour is (1,0) → 0.9
///
/// // Seeded models make the facade a pure function: reruns are identical.
/// assert_eq!(fit_predict(knn(), &x, &y, &unmeasured), predicted);
/// ```
///
/// # Panics
///
/// Panics on empty/ragged/non-finite training data (see [`Regressor::fit`]).
pub fn fit_predict<M: Regressor>(
    mut model: M,
    x: &[Vec<f64>],
    y: &[f64],
    x_predict: &[Vec<f64>],
) -> Vec<f64> {
    model.fit(x, y);
    model.predict(x_predict)
}

/// Validate a training set; shared by every implementation.
pub(crate) fn check_training_set(x: &[Vec<f64>], y: &[f64]) {
    assert!(!x.is_empty(), "empty training set");
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let d = x[0].len();
    assert!(d > 0, "zero-dimensional features");
    assert!(x.iter().all(|r| r.len() == d), "ragged feature matrix");
    assert!(
        x.iter().flatten().all(|v| v.is_finite()) && y.iter().all(|v| v.is_finite()),
        "non-finite values in training data"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mean(f64);

    impl Regressor for Mean {
        fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
            check_training_set(x, y);
            self.0 = y.iter().sum::<f64>() / y.len() as f64;
        }

        fn predict_one(&self, _x: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_batch_predict() {
        let mut m = Mean(0.0);
        m.fit(&[vec![1.0], vec![2.0]], &[10.0, 20.0]);
        assert_eq!(m.predict(&[vec![0.0], vec![9.0]]), vec![15.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut m = Mean(0.0);
        m.fit(&[vec![1.0]], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        let mut m = Mean(0.0);
        m.fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]);
    }

    #[test]
    fn fit_predict_facade_is_deterministic() {
        use crate::forest::RandomForestRegressor;
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.1 + r[1] * 0.2).collect();
        let px: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 1.0]).collect();
        // A stochastic model with a fixed construction seed gives
        // bit-identical predictions across facade calls.
        let a = fit_predict(RandomForestRegressor::new(20, 6, 0), &x, &y, &px);
        let b = fit_predict(RandomForestRegressor::new(20, 6, 0), &x, &y, &px);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }
}
