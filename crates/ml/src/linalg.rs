//! Minimal dense linear algebra: just enough for least squares and ridge
//! regression, with no external dependencies.

// Index-based loops mirror the textbook formulations of these kernels.
#![allow(clippy::needless_range_loop)]
use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// `Aᵀ A` (symmetric, cols × cols).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    let v = g.get(i, j) + ri * row[j];
                    g.set(i, j, v);
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                let v = g.get(j, i);
                g.set(i, j, v);
            }
        }
        g
    }

    /// `Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let yr = y[r];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * yr;
            }
        }
        out
    }

    /// Solve the least-squares problem `min ‖Ax − b‖₂` via Householder QR
    /// with a tiny ridge fallback when the system is rank-deficient.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows` or the matrix has more columns than
    /// rows (the normal-equation path still handles it after fallback).
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows);
        if self.rows >= self.cols {
            if let Some(x) = qr_solve(self, b) {
                return x;
            }
        }
        // Rank-deficient or under-determined: regularized normal equations.
        let mut g = self.gram();
        let scale = (0..g.cols()).map(|i| g.get(i, i)).fold(0.0, f64::max);
        let lambda = (scale * 1e-10).max(1e-12);
        for i in 0..g.cols() {
            let v = g.get(i, i) + lambda;
            g.set(i, i, v);
        }
        let rhs = self.t_matvec(b);
        cholesky_solve(&g, &rhs).expect("regularized gram matrix is SPD")
    }
}

/// Householder QR solve; returns `None` when R has a (near-)zero diagonal.
fn qr_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut qtb = b.to_vec();

    for k in 0..n {
        // Householder vector for column k.
        let mut norm = 0.0;
        for i in k..m {
            norm += r.get(i, k) * r.get(i, k);
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            return None;
        }
        let alpha = if r.get(k, k) > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r.get(k, k) - alpha;
        for i in (k + 1)..m {
            v[i - k] = r.get(i, k);
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            // Column already triangular; nothing to reflect.
            r.set(k, k, alpha);
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to R[k.., k..] and qtb[k..].
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r.get(i, j);
            }
            let f = 2.0 * dot / vnorm2;
            for i in k..m {
                let val = r.get(i, j) - f * v[i - k];
                r.set(i, j, val);
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qtb[i];
        }
        let f = 2.0 * dot / vnorm2;
        for i in k..m {
            qtb[i] -= f * v[i - k];
        }
    }

    // Back substitution on the upper-triangular R.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let diag = r.get(k, k);
        if diag.abs() < 1e-10 {
            return None;
        }
        let mut s = qtb[k];
        for j in (k + 1)..n {
            s -= r.get(k, j) * x[j];
        }
        x[k] = s / diag;
    }
    Some(x)
}

/// Solve `G x = b` for symmetric positive-definite `G` via Cholesky.
pub(crate) fn cholesky_solve(g: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = g.rows();
    assert_eq!(g.cols(), n);
    assert_eq!(b.len(), n);
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = g.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * z[k];
        }
        z[i] = s / l.get(i, i);
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in (i + 1)..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_gram() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        assert_eq!(a.t_matvec(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
    }

    #[test]
    fn exact_solve_square() {
        // x + y = 3; x - y = 1 -> x = 2, y = 1.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve_least_squares(&[3.0, 1.0]);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overdetermined_recovers_plane() {
        // y = 2a - 3b + noise-free samples.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let a = (i as f64) * 0.37;
                let b = ((i * 7 % 11) as f64) * 0.11;
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1]).collect();
        let a = Matrix::from_rows(&rows);
        let x = a.solve_least_squares(&y);
        assert!((x[0] - 2.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] + 3.0).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn rank_deficient_falls_back_gracefully() {
        // Second column is a copy of the first: infinitely many solutions;
        // the regularized fallback must return a finite one.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let a = Matrix::from_rows(&rows);
        let x = a.solve_least_squares(&y);
        assert!(x.iter().all(|v| v.is_finite()));
        // Predictions still fit.
        let pred = a.matvec(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3, "pred {p} true {t}");
        }
    }

    #[test]
    fn cholesky_known_system() {
        let g = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = cholesky_solve(&g, &[8.0, 7.0]).unwrap();
        // 4x + 2y = 8; 2x + 3y = 7 -> x = 1.25, y = 1.5.
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
        // Non-SPD input is rejected.
        let bad = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(cholesky_solve(&bad, &[1.0, 1.0]).is_none());
    }
}
