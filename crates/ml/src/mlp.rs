//! Multi-layer perceptron regression (the paper's future-work "Multi-Layer
//! Perception Neural Network").

// Index-based loops mirror the textbook formulations of these kernels.
#![allow(clippy::needless_range_loop)]
use crate::estimator::{check_training_set, Regressor};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn f(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    fn df(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh() * x.tanh(),
        }
    }
}

/// A feed-forward network with a linear output neuron, trained by
/// full-batch Adam on squared loss.
///
/// Intentionally small: the paper's datasets are ~1000 samples ×
/// 25 features, where a couple of modest hidden layers suffice.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    hidden: Vec<usize>,
    activation: Activation,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    // weights[l][j][i]: layer l, neuron j, input i; biases[l][j].
    weights: Vec<Vec<Vec<f64>>>,
    biases: Vec<Vec<f64>>,
}

impl MlpRegressor {
    /// Network with the given hidden-layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if a hidden layer has zero width or `epochs == 0`.
    pub fn new(hidden: Vec<usize>, activation: Activation, epochs: usize, seed: u64) -> Self {
        assert!(hidden.iter().all(|&h| h > 0), "zero-width hidden layer");
        assert!(epochs > 0);
        MlpRegressor {
            hidden,
            activation,
            learning_rate: 0.01,
            epochs,
            seed,
            weights: Vec::new(),
            biases: Vec::new(),
        }
    }

    /// Override the Adam learning rate (default 0.01).
    pub fn with_learning_rate(mut self, lr: f64) -> MlpRegressor {
        self.learning_rate = lr;
        self
    }

    fn forward(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // Returns (pre-activations, activations) per layer; activations[0] = input.
        let mut acts = vec![x.to_vec()];
        let mut pres = Vec::new();
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let input = acts.last().expect("non-empty");
            let pre: Vec<f64> = w
                .iter()
                .zip(b)
                .map(|(wj, bj)| wj.iter().zip(input).map(|(a, v)| a * v).sum::<f64>() + bj)
                .collect();
            let is_output = l == self.weights.len() - 1;
            let act: Vec<f64> = if is_output {
                pre.clone()
            } else {
                pre.iter().map(|&p| self.activation.f(p)).collect()
            };
            pres.push(pre);
            acts.push(act);
        }
        (pres, acts)
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        let d = x[0].len();
        let mut sizes = vec![d];
        sizes.extend(&self.hidden);
        sizes.push(1);

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.weights = (1..sizes.len())
            .map(|l| {
                let fan_in = sizes[l - 1] as f64;
                let scale = (2.0 / fan_in).sqrt();
                (0..sizes[l])
                    .map(|_| {
                        (0..sizes[l - 1])
                            .map(|_| rng.gen_range(-scale..scale))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        self.biases = (1..sizes.len()).map(|l| vec![0.0; sizes[l]]).collect();

        // Adam state.
        let mut mw: Vec<Vec<Vec<f64>>> = self
            .weights
            .iter()
            .map(|l| l.iter().map(|n| vec![0.0; n.len()]).collect())
            .collect();
        let mut vw = mw.clone();
        let mut mb: Vec<Vec<f64>> = self.biases.iter().map(|l| vec![0.0; l.len()]).collect();
        let mut vb = mb.clone();
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

        let n = x.len() as f64;
        for epoch in 1..=self.epochs {
            // Accumulate full-batch gradients.
            let mut gw: Vec<Vec<Vec<f64>>> = self
                .weights
                .iter()
                .map(|l| l.iter().map(|nrn| vec![0.0; nrn.len()]).collect())
                .collect();
            let mut gb: Vec<Vec<f64>> = self.biases.iter().map(|l| vec![0.0; l.len()]).collect();

            for (xi, &yi) in x.iter().zip(y) {
                let (pres, acts) = self.forward(xi);
                let layers = self.weights.len();
                // Output delta (squared loss, linear output).
                let mut delta = vec![2.0 * (acts[layers][0] - yi) / n];
                for l in (0..layers).rev() {
                    for (j, &dj) in delta.iter().enumerate() {
                        gb[l][j] += dj;
                        for i in 0..acts[l].len() {
                            gw[l][j][i] += dj * acts[l][i];
                        }
                    }
                    if l == 0 {
                        break;
                    }
                    let mut next = vec![0.0; acts[l].len()];
                    for (j, &dj) in delta.iter().enumerate() {
                        for i in 0..next.len() {
                            next[i] += dj * self.weights[l][j][i];
                        }
                    }
                    for (i, nd) in next.iter_mut().enumerate() {
                        *nd *= self.activation.df(pres[l - 1][i]);
                    }
                    delta = next;
                }
            }

            // Adam update.
            let t = epoch as f64;
            let lr_t = self.learning_rate * (1.0 - b2.powf(t)).sqrt() / (1.0 - b1.powf(t));
            for l in 0..self.weights.len() {
                for j in 0..self.weights[l].len() {
                    for i in 0..self.weights[l][j].len() {
                        let g = gw[l][j][i];
                        mw[l][j][i] = b1 * mw[l][j][i] + (1.0 - b1) * g;
                        vw[l][j][i] = b2 * vw[l][j][i] + (1.0 - b2) * g * g;
                        self.weights[l][j][i] -= lr_t * mw[l][j][i] / (vw[l][j][i].sqrt() + eps);
                    }
                    let g = gb[l][j];
                    mb[l][j] = b1 * mb[l][j] + (1.0 - b1) * g;
                    vb[l][j] = b2 * vb[l][j] + (1.0 - b2) * g * g;
                    self.biases[l][j] -= lr_t * mb[l][j] / (vb[l][j].sqrt() + eps);
                }
            }
        }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (_, acts) = self.forward(x);
        acts.last().expect("output layer")[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn learns_linear_function() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 25.0 - 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 0.5).collect();
        let mut m = MlpRegressor::new(vec![8], Activation::Tanh, 400, 1);
        m.fit(&x, &y);
        assert!(r2(&y, &m.predict(&x)) > 0.99);
    }

    #[test]
    fn learns_nonlinear_function() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 40.0 - 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (3.0 * r[0]).sin()).collect();
        let mut m =
            MlpRegressor::new(vec![16, 16], Activation::Tanh, 800, 3).with_learning_rate(0.02);
        m.fit(&x, &y);
        let score = r2(&y, &m.predict(&x));
        assert!(score > 0.95, "r2 = {score}");
    }

    #[test]
    fn relu_variant_trains() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 30.0 - 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].abs()).collect();
        let mut m = MlpRegressor::new(vec![12], Activation::Relu, 600, 5);
        m.fit(&x, &y);
        assert!(r2(&y, &m.predict(&x)) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut a = MlpRegressor::new(vec![4], Activation::Tanh, 50, 9);
        a.fit(&x, &y);
        let mut b = MlpRegressor::new(vec![4], Activation::Tanh, 50, 9);
        b.fit(&x, &y);
        assert_eq!(a.predict_one(&[3.0]), b.predict_one(&[3.0]));
    }
}
