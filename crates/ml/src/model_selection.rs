//! Cross-validation, train/test splitting, hyperparameter search and
//! learning curves (the evaluation protocol of §III and §IV).

use crate::estimator::Regressor;
use crate::metrics::RegressionScores;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Split `n` samples into a shuffled train/test partition with
/// `train_fraction` of the data in the training set.
///
/// # Panics
///
/// Panics if the fraction is outside `(0, 1)` or either side would be
/// empty.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0,1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let k = ((n as f64) * train_fraction).round() as usize;
    let k = k.clamp(1, n - 1);
    let test = idx.split_off(k);
    (idx, test)
}

/// Plain k-fold cross-validation.
#[derive(Debug, Clone)]
pub struct KFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// k-fold splitter.
    ///
    /// # Panics
    ///
    /// Panics if `n_splits < 2`.
    pub fn new(n_splits: usize, seed: u64) -> KFold {
        assert!(n_splits >= 2, "need at least 2 folds");
        KFold { n_splits, seed }
    }

    /// `(train, test)` index pairs for `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n < n_splits`.
    pub fn split(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(n >= self.n_splits, "more folds than samples");
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);
        fold_indices(&idx, self.n_splits)
    }
}

/// Stratified k-fold for regression: targets are sorted and dealt
/// round-robin into folds, so every fold sees the full FDR range — the
/// "ten fold stratified cross validation" of §III-A.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    /// Number of folds.
    pub n_splits: usize,
    /// Tie-breaking shuffle seed.
    pub seed: u64,
}

impl StratifiedKFold {
    /// Stratified splitter.
    ///
    /// # Panics
    ///
    /// Panics if `n_splits < 2`.
    pub fn new(n_splits: usize, seed: u64) -> StratifiedKFold {
        assert!(n_splits >= 2, "need at least 2 folds");
        StratifiedKFold { n_splits, seed }
    }

    /// `(train, test)` index pairs stratified on the continuous target.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() < n_splits`.
    pub fn split(&self, y: &[f64]) -> Vec<(Vec<usize>, Vec<usize>)> {
        let n = y.len();
        assert!(n >= self.n_splits, "more folds than samples");
        // Sort by target with seeded jitter for tie-breaking, then deal
        // consecutive samples into different folds.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let jitter: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 1e-9).collect();
        order.sort_by(|&a, &b| (y[a] + jitter[a]).total_cmp(&(y[b] + jitter[b])));

        let mut fold_of = vec![0usize; n];
        for (rank, &i) in order.iter().enumerate() {
            fold_of[i] = rank % self.n_splits;
        }
        (0..self.n_splits)
            .map(|f| {
                let test: Vec<usize> = (0..n).filter(|&i| fold_of[i] == f).collect();
                let train: Vec<usize> = (0..n).filter(|&i| fold_of[i] != f).collect();
                (train, test)
            })
            .collect()
    }
}

/// Grouped cross-validation: each fold holds out one entire group — the
/// leave-one-circuit-out protocol of cross-circuit transfer estimation,
/// where a model must be scored on a circuit it never trained on.
#[derive(Debug, Clone, Default)]
pub struct GroupKFold;

impl GroupKFold {
    /// `(train, test)` index pairs, one fold per distinct group label,
    /// in order of first appearance. Fold `f`'s test set is exactly the
    /// indices whose label equals the `f`-th distinct label.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two distinct groups (no held-out fold
    /// would have disjoint training data).
    pub fn leave_one_out(groups: &[usize]) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut labels: Vec<usize> = Vec::new();
        for &g in groups {
            if !labels.contains(&g) {
                labels.push(g);
            }
        }
        assert!(
            labels.len() >= 2,
            "grouped CV needs at least 2 distinct groups, got {}",
            labels.len()
        );
        labels
            .iter()
            .map(|&label| {
                let test: Vec<usize> = (0..groups.len()).filter(|&i| groups[i] == label).collect();
                let train: Vec<usize> = (0..groups.len()).filter(|&i| groups[i] != label).collect();
                (train, test)
            })
            .collect()
    }
}

fn fold_indices(shuffled: &[usize], k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let n = shuffled.len();
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test: Vec<usize> = shuffled[start..start + len].to_vec();
        let train: Vec<usize> = shuffled[..start]
            .iter()
            .chain(&shuffled[start + len..])
            .copied()
            .collect();
        out.push((train, test));
        start += len;
    }
    out
}

/// Select rows of a design matrix / target vector.
pub fn take(x: &[Vec<f64>], y: &[f64], idx: &[usize]) -> (Vec<Vec<f64>>, Vec<f64>) {
    (
        idx.iter().map(|&i| x[i].clone()).collect(),
        idx.iter().map(|&i| y[i]).collect(),
    )
}

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Test-fold scores, one per fold.
    pub fold_scores: Vec<RegressionScores>,
    /// Training-set scores, one per fold.
    pub train_scores: Vec<RegressionScores>,
}

impl CvResult {
    /// Mean test-fold scores.
    pub fn mean_test(&self) -> RegressionScores {
        RegressionScores::mean(&self.fold_scores)
    }

    /// Mean training scores.
    pub fn mean_train(&self) -> RegressionScores {
        RegressionScores::mean(&self.train_scores)
    }
}

/// Cross-validate a model factory over the given folds.
///
/// `factory` must return a *fresh, unfitted* model; one is created per
/// fold.
pub fn cross_validate<M: Regressor>(
    factory: impl Fn() -> M,
    x: &[Vec<f64>],
    y: &[f64],
    folds: &[(Vec<usize>, Vec<usize>)],
) -> CvResult {
    let mut fold_scores = Vec::with_capacity(folds.len());
    let mut train_scores = Vec::with_capacity(folds.len());
    for (train, test) in folds {
        let (tx, ty) = take(x, y, train);
        let (vx, vy) = take(x, y, test);
        let mut model = factory();
        model.fit(&tx, &ty);
        fold_scores.push(RegressionScores::compute(&vy, &model.predict(&vx)));
        train_scores.push(RegressionScores::compute(&ty, &model.predict(&tx)));
    }
    CvResult {
        fold_scores,
        train_scores,
    }
}

/// One point of a learning curve.
#[derive(Debug, Clone)]
pub struct LearningCurvePoint {
    /// Fraction of the data used for training.
    pub train_fraction: f64,
    /// Mean training R² at this size.
    pub train_r2: f64,
    /// Mean test R² at this size.
    pub test_r2: f64,
    /// Full mean score bundles for deeper analysis.
    pub train_scores: RegressionScores,
    /// Test-score bundle.
    pub test_scores: RegressionScores,
}

/// Compute a learning curve (Figs. 2b/3b/4b of the paper): for each
/// requested training fraction, the model is trained on that fraction of
/// each CV-fold's training split and evaluated on the fold's test split.
pub fn learning_curve<M: Regressor>(
    factory: impl Fn() -> M,
    x: &[Vec<f64>],
    y: &[f64],
    fractions: &[f64],
    folds: &[(Vec<usize>, Vec<usize>)],
    seed: u64,
) -> Vec<LearningCurvePoint> {
    let mut points = Vec::with_capacity(fractions.len());
    for (fi, &fraction) in fractions.iter().enumerate() {
        assert!(fraction > 0.0 && fraction <= 1.0, "bad fraction {fraction}");
        let mut train_scores = Vec::new();
        let mut test_scores = Vec::new();
        for (fold_i, (train, test)) in folds.iter().enumerate() {
            let keep = ((train.len() as f64) * fraction).round().max(2.0) as usize;
            let keep = keep.min(train.len());
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (fi as u64) << 32 ^ fold_i as u64);
            let mut subset = train.clone();
            subset.shuffle(&mut rng);
            subset.truncate(keep);
            let (tx, ty) = take(x, y, &subset);
            let (vx, vy) = take(x, y, test);
            let mut model = factory();
            model.fit(&tx, &ty);
            train_scores.push(RegressionScores::compute(&ty, &model.predict(&tx)));
            test_scores.push(RegressionScores::compute(&vy, &model.predict(&vx)));
        }
        let tr = RegressionScores::mean(&train_scores);
        let te = RegressionScores::mean(&test_scores);
        points.push(LearningCurvePoint {
            train_fraction: fraction,
            train_r2: tr.r2,
            test_r2: te.r2,
            train_scores: tr,
            test_scores: te,
        });
    }
    points
}

/// Result of a hyperparameter search.
#[derive(Debug, Clone)]
pub struct SearchResult<P> {
    /// The best parameter set found.
    pub best_params: P,
    /// Mean test scores of the best parameter set.
    pub best_scores: RegressionScores,
    /// Every `(params, mean test scores)` evaluated, in evaluation order.
    pub evaluated: Vec<(P, RegressionScores)>,
}

/// Exhaustive grid search over explicit parameter sets, ranked by mean
/// test R² (the paper's §III-A protocol: random search first, then a grid
/// around the best region).
///
/// # Panics
///
/// Panics if `params` is empty.
pub fn grid_search<P: Clone, M: Regressor>(
    params: &[P],
    factory: impl Fn(&P) -> M,
    x: &[Vec<f64>],
    y: &[f64],
    folds: &[(Vec<usize>, Vec<usize>)],
) -> SearchResult<P> {
    assert!(!params.is_empty(), "empty parameter grid");
    let mut evaluated = Vec::with_capacity(params.len());
    let mut best: Option<(usize, RegressionScores)> = None;
    for (i, p) in params.iter().enumerate() {
        let cv = cross_validate(|| factory(p), x, y, folds);
        let scores = cv.mean_test();
        if best.as_ref().is_none_or(|(_, b)| scores.r2 > b.r2) {
            best = Some((i, scores));
        }
        evaluated.push((p.clone(), scores));
    }
    let (bi, bs) = best.expect("non-empty grid");
    SearchResult {
        best_params: params[bi].clone(),
        best_scores: bs,
        evaluated,
    }
}

/// Random search: draw `n_iter` parameter sets from `sampler` and rank
/// them like [`grid_search`].
///
/// # Panics
///
/// Panics if `n_iter == 0`.
pub fn random_search<P: Clone, M: Regressor>(
    n_iter: usize,
    seed: u64,
    mut sampler: impl FnMut(&mut ChaCha8Rng) -> P,
    factory: impl Fn(&P) -> M,
    x: &[Vec<f64>],
    y: &[f64],
    folds: &[(Vec<usize>, Vec<usize>)],
) -> SearchResult<P> {
    assert!(n_iter > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params: Vec<P> = (0..n_iter).map(|_| sampler(&mut rng)).collect();
    grid_search(&params, factory, x, y, folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{Distance, KnnRegressor, WeightScheme};
    use crate::linear::LinearRegression;

    fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] - 2.0 * r[1] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let (train, test) = train_test_split(100, 0.5, 42);
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 50);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = KFold::new(10, 1).split(103);
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0usize; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &t in test {
                seen[t] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each sample tested once");
    }

    #[test]
    fn stratified_folds_balance_target_range() {
        // Bimodal target, mimicking FDR distributions.
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 0.02 } else { 0.9 }).collect();
        let folds = StratifiedKFold::new(10, 3).split(&y);
        for (_, test) in &folds {
            let high = test.iter().filter(|&&i| y[i] > 0.5).count();
            assert_eq!(high, 5, "each fold holds half high-FDR samples");
        }
    }

    #[test]
    fn cross_validate_perfect_model() {
        let (x, y) = linear_data(60);
        let folds = KFold::new(5, 7).split(x.len());
        let cv = cross_validate(LinearRegression::new, &x, &y, &folds);
        assert!(cv.mean_test().r2 > 0.999999);
        assert!(cv.mean_train().r2 > 0.999999);
        assert_eq!(cv.fold_scores.len(), 5);
    }

    #[test]
    fn learning_curve_improves_with_data() {
        // k-NN on a noisy-ish nonlinear target benefits from more data.
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64) * 0.05]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let folds = KFold::new(5, 2).split(x.len());
        let pts = learning_curve(
            || KnnRegressor::new(3, Distance::Euclidean, WeightScheme::Uniform),
            &x,
            &y,
            &[0.1, 0.5, 1.0],
            &folds,
            9,
        );
        assert_eq!(pts.len(), 3);
        assert!(
            pts[2].test_r2 >= pts[0].test_r2,
            "more data should not hurt: {} vs {}",
            pts[2].test_r2,
            pts[0].test_r2
        );
    }

    #[test]
    fn grid_search_finds_the_better_k() {
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![(i as f64) * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let folds = KFold::new(4, 5).split(x.len());
        let res = grid_search(
            &[1usize, 3, 60],
            |&k| KnnRegressor::new(k, Distance::Euclidean, WeightScheme::Uniform),
            &x,
            &y,
            &folds,
        );
        assert_ne!(res.best_params, 60, "absurdly large k must lose");
        assert_eq!(res.evaluated.len(), 3);
        assert!(res.best_scores.r2 > 0.9);
    }

    #[test]
    fn random_search_is_deterministic() {
        let (x, y) = linear_data(40);
        let folds = KFold::new(4, 0).split(x.len());
        let run = |seed| {
            random_search(
                5,
                seed,
                |rng| rng.gen_range(1usize..10),
                |&k| KnnRegressor::new(k, Distance::Manhattan, WeightScheme::Uniform),
                &x,
                &y,
                &folds,
            )
            .best_params
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        let _ = KFold::new(10, 0).split(5);
    }

    /// Every fold's train set is exactly the complement of its test set,
    /// and the test sets tile `0..n` — each index tested exactly once.
    fn assert_exact_partition(folds: &[(Vec<usize>, Vec<usize>)], n: usize) {
        let mut tested = vec![0usize; n];
        for (train, test) in folds {
            assert_eq!(train.len() + test.len(), n);
            let mut seen = vec![false; n];
            for &i in test {
                tested[i] += 1;
                seen[i] = true;
            }
            for &i in train {
                assert!(!seen[i], "index {i} in both train and test");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s), "fold misses an index");
        }
        assert!(
            tested.iter().all(|&c| c == 1),
            "an index was tested {:?} times",
            tested.iter().max()
        );
    }

    #[test]
    fn group_kfold_holds_out_whole_groups() {
        let groups = [0usize, 0, 1, 1, 1, 2, 0];
        let folds = GroupKFold::leave_one_out(&groups);
        assert_eq!(folds.len(), 3, "one fold per distinct group");
        assert_exact_partition(&folds, groups.len());
        for (train, test) in &folds {
            let held: std::collections::HashSet<usize> = test.iter().map(|&i| groups[i]).collect();
            assert_eq!(held.len(), 1, "test fold spans one group");
            let label = *held.iter().next().unwrap();
            assert!(
                train.iter().all(|&i| groups[i] != label),
                "held-out group leaks into training"
            );
        }
        // Fold order follows first appearance of each label.
        assert_eq!(folds[0].1, vec![0, 1, 6]);
        assert_eq!(folds[1].1, vec![2, 3, 4]);
        assert_eq!(folds[2].1, vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least 2 distinct groups")]
    fn group_kfold_rejects_single_group() {
        let _ = GroupKFold::leave_one_out(&[7, 7, 7]);
    }

    #[test]
    fn kfold_covers_every_index_exactly_once() {
        // Uneven sizes included: n not divisible by k.
        for (n, k) in [(10usize, 2usize), (103, 10), (7, 7), (24, 5)] {
            assert_exact_partition(&KFold::new(k, 42).split(n), n);
        }
    }

    #[test]
    fn stratified_kfold_covers_every_index_exactly_once() {
        // Continuous, tied and constant targets (ties exercise the
        // seeded jitter path).
        let targets: [Vec<f64>; 3] = [
            (0..53).map(|i| (i as f64) / 53.0).collect(),
            (0..40)
                .map(|i| if i % 2 == 0 { 0.0 } else { 0.9 })
                .collect(),
            vec![0.5; 17],
        ];
        for y in &targets {
            for k in [2usize, 5] {
                assert_exact_partition(&StratifiedKFold::new(k, 3).split(y), y.len());
            }
        }
    }
}
