//! Random-forest regression (bagged CART trees with per-split feature
//! subsampling).

use crate::estimator::{check_training_set, Regressor};
use crate::tree::DecisionTreeRegressor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random forest: an average of `n_trees` CART trees, each grown on a
/// bootstrap sample with `max_features` features considered per split.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    n_trees: usize,
    max_depth: usize,
    min_samples_leaf: usize,
    max_features_fraction: f64,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Forest with `n_trees` trees of depth `max_depth`.
    ///
    /// `max_features_fraction` is the per-split feature fraction (0 → use
    /// √d, the classic default).
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0` or the fraction is outside `[0, 1]`.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> RandomForestRegressor {
        assert!(n_trees > 0);
        RandomForestRegressor {
            n_trees,
            max_depth,
            min_samples_leaf: 1,
            max_features_fraction: 0.0,
            seed,
            trees: Vec::new(),
        }
    }

    /// Override the per-split feature fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn with_max_features_fraction(mut self, fraction: f64) -> RandomForestRegressor {
        assert!(fraction > 0.0 && fraction <= 1.0);
        self.max_features_fraction = fraction;
        self
    }

    /// Override the minimum leaf size (default 1).
    pub fn with_min_samples_leaf(mut self, n: usize) -> RandomForestRegressor {
        self.min_samples_leaf = n.max(1);
        self
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        let n = x.len();
        let d = x[0].len();
        let max_features = if self.max_features_fraction > 0.0 {
            ((d as f64 * self.max_features_fraction).round() as usize).clamp(1, d)
        } else {
            (d as f64).sqrt().round().max(1.0) as usize
        };
        self.trees.clear();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTreeRegressor::new(self.max_depth, 2, self.min_samples_leaf)
                .with_max_features(max_features);
            tree.fit_with_rng(&bx, &by, Some(&mut rng));
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict_one(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn friedman_like(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Deterministic non-linear target over 4 features.
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i * 13) % 97) as f64 / 97.0,
                    ((i * 29) % 89) as f64 / 89.0,
                    ((i * 7) % 83) as f64 / 83.0,
                    ((i * 53) % 79) as f64 / 79.0,
                ]
            })
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| (3.0 * r[0] * r[1]).sin() + 2.0 * (r[2] - 0.5).powi(2) + r[3])
            .collect();
        (x, y)
    }

    #[test]
    fn forest_fits_nonlinear_data() {
        let (x, y) = friedman_like(300);
        let mut f = RandomForestRegressor::new(30, 8, 42);
        f.fit(&x, &y);
        let pred = f.predict(&x);
        assert!(r2(&y, &pred) > 0.9, "r2 = {}", r2(&y, &pred));
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let (x, y) = friedman_like(100);
        let mut a = RandomForestRegressor::new(10, 6, 7);
        a.fit(&x, &y);
        let mut b = RandomForestRegressor::new(10, 6, 7);
        b.fit(&x, &y);
        for q in x.iter().take(20) {
            assert_eq!(a.predict_one(q), b.predict_one(q));
        }
        let mut c = RandomForestRegressor::new(10, 6, 8);
        c.fit(&x, &y);
        let differs = x
            .iter()
            .take(20)
            .any(|q| a.predict_one(q) != c.predict_one(q));
        assert!(differs, "different seeds must differ somewhere");
    }

    #[test]
    fn more_trees_smooth_predictions() {
        let (x, y) = friedman_like(200);
        // Held-out half.
        let (train_x, test_x) = x.split_at(100);
        let (train_y, test_y) = y.split_at(100);
        let mut small = RandomForestRegressor::new(2, 8, 3);
        small.fit(train_x, train_y);
        let mut big = RandomForestRegressor::new(40, 8, 3);
        big.fit(train_x, train_y);
        let r_small = r2(test_y, &small.predict(test_x));
        let r_big = r2(test_y, &big.predict(test_x));
        assert!(
            r_big >= r_small - 0.05,
            "ensemble should not be much worse: {r_big} vs {r_small}"
        );
        assert_eq!(big.num_trees(), 40);
    }
}
