//! Linear models: ordinary least squares and ridge regression.

use crate::estimator::{check_training_set, Regressor};
use crate::linalg::{cholesky_solve, Matrix};

/// Ordinary Linear Least Squares (the paper's §IV-B.1 baseline).
///
/// Fits `y ≈ w·x + b` by minimising the residual sum of squares via
/// Householder QR.
///
/// # Example
///
/// ```
/// use ffr_ml::{LinearRegression, Regressor};
///
/// let x = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let y = vec![1.0, 3.0, 5.0]; // y = 2x + 1
/// let mut m = LinearRegression::new();
/// m.fit(&x, &y);
/// assert!((m.predict_one(&[3.0]) - 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Unfitted model.
    pub fn new() -> LinearRegression {
        LinearRegression::default()
    }

    /// Learned coefficients (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        // Augment with a bias column.
        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.push(1.0);
                v
            })
            .collect();
        let a = Matrix::from_rows(&rows);
        let mut sol = a.solve_least_squares(y);
        self.intercept = sol.pop().expect("bias column present");
        self.weights = sol;
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "model/input dimension mismatch"
        );
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.intercept
    }
}

/// Ridge regression: least squares with an L2 penalty `alpha` on the
/// weights (not the intercept). More stable than OLS on collinear feature
/// sets like the paper's.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 regularisation strength.
    alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
}

impl RidgeRegression {
    /// Ridge model with penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn new(alpha: f64) -> RidgeRegression {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        RidgeRegression {
            alpha,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Learned coefficients (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        let n = x.len() as f64;
        let d = x[0].len();
        // Center targets and features so the intercept is unpenalised.
        let x_mean: Vec<f64> = (0..d)
            .map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n;
        let centered: Vec<Vec<f64>> = x
            .iter()
            .map(|r| r.iter().zip(&x_mean).map(|(v, m)| v - m).collect())
            .collect();
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let a = Matrix::from_rows(&centered);
        let mut g = a.gram();
        for i in 0..d {
            let v = g.get(i, i) + self.alpha;
            g.set(i, i, v);
        }
        let rhs = a.t_matvec(&yc);
        let w = cholesky_solve(&g, &rhs).unwrap_or_else(|| {
            // alpha = 0 on singular data: tiny jitter.
            let mut g2 = a.gram();
            for i in 0..d {
                let v = g2.get(i, i) + 1e-8;
                g2.set(i, i, v);
            }
            cholesky_solve(&g2, &rhs).expect("jittered gram is SPD")
        });
        self.intercept = y_mean - w.iter().zip(&x_mean).map(|(wi, m)| wi * m).sum::<f64>();
        self.weights = w;
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "model/input dimension mismatch"
        );
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 1.5 * r[0] - 2.0 * r[1] + 0.5 * r[2] + 4.0)
            .collect();
        (x, y)
    }

    #[test]
    fn ols_recovers_exact_linear_function() {
        let (x, y) = linear_data();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.weights()[0] - 1.5).abs() < 1e-9);
        assert!((m.weights()[1] + 2.0).abs() < 1e-9);
        assert!((m.weights()[2] - 0.5).abs() < 1e-9);
        assert!((m.intercept() - 4.0).abs() < 1e-9);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) > 0.999999);
    }

    #[test]
    fn ols_cannot_fit_nonlinear_target() {
        // The paper's central observation: a linear model fails on a
        // non-linear relationship.
        let x: Vec<Vec<f64>> = (-10..=10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) < 0.2, "linear model must underfit x^2");
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (x, y) = linear_data();
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y);
        let mut ridge = RidgeRegression::new(100.0);
        ridge.fit(&x, &y);
        let ols_norm: f64 = ols.weights().iter().map(|w| w * w).sum();
        let ridge_norm: f64 = ridge.weights().iter().map(|w| w * w).sum();
        assert!(ridge_norm < ols_norm, "{ridge_norm} !< {ols_norm}");
    }

    #[test]
    fn ridge_zero_alpha_matches_ols() {
        let (x, y) = linear_data();
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y);
        let mut ridge = RidgeRegression::new(0.0);
        ridge.fit(&x, &y);
        for (a, b) in ols.weights().iter().zip(ridge.weights()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((ols.intercept() - ridge.intercept()).abs() < 1e-6);
    }

    #[test]
    fn ridge_handles_duplicate_columns() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let mut m = RidgeRegression::new(1e-6);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) > 0.999);
    }
}
