//! k-Nearest-Neighbors regression (§IV-B.2 of the paper).
//!
//! The paper's tuned configuration is `k = 3` with the Manhattan distance
//! and inverse-distance weighting; all of those are parameters here. A
//! KD-tree accelerates queries on low-dimensional data, with an exact
//! brute-force fallback (both are exposed and property-tested against each
//! other).

use crate::estimator::{check_training_set, Regressor};

/// Distance metric between feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distance {
    /// L1 (the paper's tuned choice).
    Manhattan,
    /// L2.
    Euclidean,
    /// L∞.
    Chebyshev,
    /// General Minkowski with exponent `p ≥ 1`.
    Minkowski(f64),
}

impl Distance {
    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on length mismatch.
    pub fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Distance::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Distance::Minkowski(p) => {
                assert!(p >= 1.0, "Minkowski exponent must be >= 1");
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs().powf(p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
        }
    }

    /// Distance contribution of a single axis gap (used for KD-tree
    /// pruning): for every supported metric, the full distance is at least
    /// the per-axis gap.
    fn axis_lower_bound(self, gap: f64) -> f64 {
        gap.abs()
    }
}

/// Neighbor weighting for the prediction average.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Plain average of the k neighbors.
    Uniform,
    /// Weight 1/d; an exact-match neighbor short-circuits the prediction
    /// (scikit-learn behaviour).
    InverseDistance,
}

/// k-NN regressor.
///
/// # Example
///
/// ```
/// use ffr_ml::{Distance, KnnRegressor, Regressor, WeightScheme};
///
/// let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![0.0, 1.0, 2.0, 3.0];
/// let mut m = KnnRegressor::new(2, Distance::Manhattan, WeightScheme::Uniform);
/// m.fit(&x, &y);
/// assert!((m.predict_one(&[1.6]) - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    distance: Distance,
    weights: WeightScheme,
    use_kd_tree: bool,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    tree: Option<KdTree>,
}

impl KnnRegressor {
    /// New regressor with the paper's hyperparameter space.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, distance: Distance, weights: WeightScheme) -> KnnRegressor {
        assert!(k > 0, "k must be positive");
        KnnRegressor {
            k,
            distance,
            weights,
            use_kd_tree: true,
            x: Vec::new(),
            y: Vec::new(),
            tree: None,
        }
    }

    /// The paper's tuned model: `k = 3`, Manhattan, inverse-distance.
    pub fn paper_tuned() -> KnnRegressor {
        KnnRegressor::new(3, Distance::Manhattan, WeightScheme::InverseDistance)
    }

    /// Disable the KD-tree (exact brute-force search). Results are
    /// identical; useful for benchmarking the accelerator.
    pub fn with_brute_force(mut self) -> KnnRegressor {
        self.use_kd_tree = false;
        self
    }

    /// `(index, distance)` of the k nearest training points.
    fn neighbors(&self, x: &[f64]) -> Vec<(usize, f64)> {
        match &self.tree {
            Some(tree) => tree.k_nearest(x, self.k, self.distance, &self.x),
            None => brute_force_k_nearest(&self.x, x, self.k, self.distance),
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.tree = if self.use_kd_tree {
            Some(KdTree::build(x))
        } else {
            None
        };
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.x.is_empty(), "predict before fit");
        let neigh = self.neighbors(x);
        match self.weights {
            WeightScheme::Uniform => {
                neigh.iter().map(|&(i, _)| self.y[i]).sum::<f64>() / neigh.len() as f64
            }
            WeightScheme::InverseDistance => {
                // Exact matches dominate: average the zero-distance ones.
                let exact: Vec<usize> = neigh
                    .iter()
                    .filter(|&&(_, d)| d == 0.0)
                    .map(|&(i, _)| i)
                    .collect();
                if !exact.is_empty() {
                    return exact.iter().map(|&i| self.y[i]).sum::<f64>() / exact.len() as f64;
                }
                let mut num = 0.0;
                let mut den = 0.0;
                for &(i, d) in &neigh {
                    let w = 1.0 / d;
                    num += w * self.y[i];
                    den += w;
                }
                num / den
            }
        }
    }
}

fn brute_force_k_nearest(
    train: &[Vec<f64>],
    x: &[f64],
    k: usize,
    distance: Distance,
) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = train
        .iter()
        .enumerate()
        .map(|(i, t)| (i, distance.eval(t, x)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k.min(all.len()));
    all
}

/// A KD-tree over training points, generic over the Minkowski family via
/// per-axis lower-bound pruning.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct KdNode {
    point: usize,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Build a balanced tree (median split, cycling axes).
    pub fn build(points: &[Vec<f64>]) -> KdTree {
        let mut nodes = Vec::with_capacity(points.len());
        let mut idx: Vec<usize> = (0..points.len()).collect();
        let dims = points.first().map_or(0, |p| p.len());
        let root = Self::build_rec(points, &mut idx[..], 0, dims, &mut nodes);
        KdTree { nodes, root }
    }

    fn build_rec(
        points: &[Vec<f64>],
        idx: &mut [usize],
        depth: usize,
        dims: usize,
        nodes: &mut Vec<KdNode>,
    ) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = depth % dims.max(1);
        idx.sort_by(|&a, &b| points[a][axis].total_cmp(&points[b][axis]).then(a.cmp(&b)));
        let mid = idx.len() / 2;
        let point = idx[mid];
        let node_index = nodes.len();
        nodes.push(KdNode {
            point,
            axis,
            left: None,
            right: None,
        });
        let (lo, rest) = idx.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(points, lo, depth + 1, dims, nodes);
        let right = Self::build_rec(points, hi, depth + 1, dims, nodes);
        nodes[node_index].left = left;
        nodes[node_index].right = right;
        Some(node_index)
    }

    /// Exact k-nearest-neighbor query.
    pub fn k_nearest(
        &self,
        x: &[f64],
        k: usize,
        distance: Distance,
        points: &[Vec<f64>],
    ) -> Vec<(usize, f64)> {
        // Max-heap of the current best k, by distance (then index for
        // determinism).
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.search(root, x, k, distance, points, &mut best);
        }
        best.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        best
    }

    fn search(
        &self,
        node_idx: usize,
        x: &[f64],
        k: usize,
        distance: Distance,
        points: &[Vec<f64>],
        best: &mut Vec<(usize, f64)>,
    ) {
        let node = &self.nodes[node_idx];
        let d = distance.eval(&points[node.point], x);
        insert_candidate(best, k, (node.point, d));

        let axis_gap = x[node.axis] - points[node.point][node.axis];
        let (near, far) = if axis_gap <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, x, k, distance, points, best);
        }
        let bound = distance.axis_lower_bound(axis_gap);
        let worst = current_worst(best, k);
        if let Some(f) = far {
            if best.len() < k || bound <= worst {
                self.search(f, x, k, distance, points, best);
            }
        }
    }
}

fn insert_candidate(best: &mut Vec<(usize, f64)>, k: usize, cand: (usize, f64)) {
    best.push(cand);
    best.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    if best.len() > k {
        best.pop();
    }
}

fn current_worst(best: &[(usize, f64)], k: usize) -> f64 {
    if best.len() < k {
        f64::INFINITY
    } else {
        best.last().map_or(f64::INFINITY, |&(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn interpolates_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let mut m = KnnRegressor::new(3, Distance::Euclidean, WeightScheme::Uniform);
        m.fit(&x, &y);
        assert_eq!(m.predict_one(&[2.0]), 0.0);
        assert_eq!(m.predict_one(&[15.0]), 1.0);
    }

    #[test]
    fn inverse_distance_weighting_prefers_closer() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0.0, 1.0];
        let mut m = KnnRegressor::new(2, Distance::Manhattan, WeightScheme::InverseDistance);
        m.fit(&x, &y);
        // Query at 1.0: weights 1/1 and 1/9 -> (0*1 + 1*(1/9)) / (10/9) = 0.1.
        assert!((m.predict_one(&[1.0]) - 0.1).abs() < 1e-12);
        // Exact match short-circuits.
        assert_eq!(m.predict_one(&[10.0]), 1.0);
    }

    #[test]
    fn kd_tree_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let points: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..5).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let tree = KdTree::build(&points);
        for metric in [
            Distance::Manhattan,
            Distance::Euclidean,
            Distance::Chebyshev,
        ] {
            for _ in 0..50 {
                let q: Vec<f64> = (0..5).map(|_| rng.gen_range(-12.0..12.0)).collect();
                let got = tree.k_nearest(&q, 7, metric, &points);
                let want = brute_force_k_nearest(&points, &q, 7, metric);
                let gd: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
                let wd: Vec<f64> = want.iter().map(|&(_, d)| d).collect();
                for (a, b) in gd.iter().zip(&wd) {
                    assert!((a - b).abs() < 1e-9, "{metric:?}: {gd:?} vs {wd:?}");
                }
            }
        }
    }

    #[test]
    fn brute_and_tree_regressors_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + r[1] * r[2]).collect();
        let mut fast = KnnRegressor::new(5, Distance::Manhattan, WeightScheme::InverseDistance);
        fast.fit(&x, &y);
        let mut slow = fast.clone().with_brute_force();
        slow.fit(&x, &y);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let a = fast.predict_one(&q);
            let b = slow.predict_one(&q);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn minkowski_reduces_to_known_metrics() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert!((Distance::Minkowski(1.0).eval(&a, &b) - 7.0).abs() < 1e-9);
        assert!((Distance::Minkowski(2.0).eval(&a, &b) - 5.0).abs() < 1e-9);
        assert_eq!(Distance::Chebyshev.eval(&a, &b), 4.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KnnRegressor::new(0, Distance::Euclidean, WeightScheme::Uniform);
    }
}
