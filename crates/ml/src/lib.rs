//! A from-scratch supervised-regression library.
//!
//! This crate replaces the paper's use of Python's scikit-learn: it
//! implements every model the paper evaluates — **Linear Least Squares**,
//! **k-Nearest Neighbors** (inverse-distance weighting, Manhattan /
//! Euclidean / Minkowski metrics) and **ε-Support-Vector Regression** with
//! an RBF kernel (solved by an SMO/LIBSVM-style working-set algorithm) —
//! plus the models the paper lists as future work: **decision trees**,
//! **random forests**, **gradient boosting** and a **multi-layer
//! perceptron**.
//!
//! Around the models it provides the full evaluation protocol of §III-C:
//! the MAE / MAX / RMSE / Explained-Variance / R² metrics, k-fold and
//! stratified k-fold cross-validation, train/test splits, learning curves,
//! and random + grid hyperparameter search.
//!
//! Everything is deterministic given a seed; no external linear-algebra or
//! ML dependencies are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boosting;
mod estimator;
mod forest;
pub mod importance;
mod knn;
mod linalg;
mod linear;
pub mod metrics;
mod mlp;
pub mod model_selection;
pub mod pca;
mod preprocess;
mod svm;
mod tree;

pub use boosting::GradientBoostingRegressor;
pub use estimator::{fit_predict, Regressor};
pub use forest::RandomForestRegressor;
pub use knn::{Distance, KdTree, KnnRegressor, WeightScheme};
pub use linalg::Matrix;
pub use linear::{LinearRegression, RidgeRegression};
pub use metrics::RegressionScores;
pub use mlp::{Activation, MlpRegressor};
pub use pca::Pca;
pub use preprocess::{MinMaxScaler, ScaledRegressor, StandardScaler};
pub use svm::{Kernel, SvrRegressor};
pub use tree::DecisionTreeRegressor;
