//! Gradient-boosted regression trees (squared loss), one of the boosting
//! algorithms the paper's future-work section calls for.

use crate::estimator::{check_training_set, Regressor};
use crate::tree::DecisionTreeRegressor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Gradient boosting with CART base learners and squared loss: each stage
/// fits a shallow tree to the current residuals and is added with a
/// shrinkage factor (`learning_rate`). Optional stochastic row subsampling
/// gives the classic "stochastic gradient boosting" variant.
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    n_estimators: usize,
    learning_rate: f64,
    max_depth: usize,
    subsample: f64,
    seed: u64,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Boosting ensemble of `n_estimators` trees of depth `max_depth`
    /// blended with `learning_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0` or `learning_rate` is outside
    /// `(0, 1]`.
    pub fn new(n_estimators: usize, learning_rate: f64, max_depth: usize) -> Self {
        assert!(n_estimators > 0);
        assert!(learning_rate > 0.0 && learning_rate <= 1.0);
        GradientBoostingRegressor {
            n_estimators,
            learning_rate,
            max_depth,
            subsample: 1.0,
            seed: 0,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// Enable stochastic row subsampling (fraction in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn with_subsample(mut self, fraction: f64, seed: u64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        self.subsample = fraction;
        self.seed = seed;
        self
    }

    /// Number of fitted stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        let n = x.len();
        self.base = y.iter().sum::<f64>() / n as f64;
        self.stages.clear();
        let mut current: Vec<f64> = vec![self.base; n];
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        for _ in 0..self.n_estimators {
            let residual: Vec<f64> = y.iter().zip(&current).map(|(t, p)| t - p).collect();
            let (fit_x, fit_r): (Vec<Vec<f64>>, Vec<f64>) = if self.subsample < 1.0 {
                let keep = ((n as f64 * self.subsample).round() as usize).max(2);
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..keep {
                    let j = rng.gen_range(i..n);
                    idx.swap(i, j);
                }
                idx.truncate(keep);
                (
                    idx.iter().map(|&i| x[i].clone()).collect(),
                    idx.iter().map(|&i| residual[i]).collect(),
                )
            } else {
                (x.to_vec(), residual.clone())
            };
            let mut tree = DecisionTreeRegressor::new(self.max_depth, 2, 1);
            tree.fit(&fit_x, &fit_r);
            for (c, xi) in current.iter_mut().zip(x) {
                *c += self.learning_rate * tree.predict_one(xi);
            }
            self.stages.push(tree);
        }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.stages.is_empty(), "predict before fit");
        self.base
            + self
                .stages
                .iter()
                .map(|t| self.learning_rate * t.predict_one(x))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn wavy(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin() + 0.3 * r[0]).collect();
        (x, y)
    }

    #[test]
    fn boosting_reduces_training_error_monotonically() {
        let (x, y) = wavy(120);
        let mut last = f64::INFINITY;
        for stages in [1usize, 5, 25, 100] {
            let mut m = GradientBoostingRegressor::new(stages, 0.2, 3);
            m.fit(&x, &y);
            let e = rmse(&y, &m.predict(&x));
            assert!(e <= last + 1e-9, "{stages} stages: {e} > {last}");
            last = e;
        }
        assert!(last < 0.05, "final training RMSE = {last}");
    }

    #[test]
    fn boosting_beats_single_tree_of_same_depth() {
        let (x, y) = wavy(150);
        let mut tree = DecisionTreeRegressor::new(3, 2, 1);
        tree.fit(&x, &y);
        let mut gbm = GradientBoostingRegressor::new(80, 0.2, 3);
        gbm.fit(&x, &y);
        let r_tree = r2(&y, &tree.predict(&x));
        let r_gbm = r2(&y, &gbm.predict(&x));
        assert!(r_gbm > r_tree, "{r_gbm} vs {r_tree}");
    }

    #[test]
    fn subsampled_boosting_still_fits() {
        let (x, y) = wavy(150);
        let mut m = GradientBoostingRegressor::new(120, 0.15, 3).with_subsample(0.6, 11);
        m.fit(&x, &y);
        assert!(r2(&y, &m.predict(&x)) > 0.95);
        assert_eq!(m.num_stages(), 120);
    }
}
