//! Permutation feature importance.
//!
//! The paper's future work states "the value of each feature needs to be
//! evaluated separately"; permutation importance does exactly that: the
//! drop in held-out R² when one feature column is randomly shuffled
//! measures how much the model relies on it.

use crate::estimator::Regressor;
use crate::metrics::r2;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Column index of the feature.
    pub column: usize,
    /// Mean R² drop over the repetitions (higher = more important).
    pub mean_drop: f64,
    /// Standard deviation of the drop across repetitions.
    pub std_drop: f64,
}

/// Compute permutation importance of every feature on held-out data.
///
/// The model must already be fitted; `x`/`y` should be an evaluation split
/// the model has not seen. Each column is shuffled `repeats` times with
/// seeds derived from `seed`.
///
/// # Panics
///
/// Panics if `x` is empty/ragged, lengths mismatch, or `repeats == 0`.
pub fn permutation_importance<M: Regressor + ?Sized>(
    model: &M,
    x: &[Vec<f64>],
    y: &[f64],
    repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    assert!(!x.is_empty(), "empty evaluation set");
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(repeats > 0, "repeats must be positive");
    let d = x[0].len();
    assert!(x.iter().all(|r| r.len() == d), "ragged matrix");

    let baseline = r2(y, &model.predict(x));
    let mut out = Vec::with_capacity(d);
    for col in 0..d {
        let mut drops = Vec::with_capacity(repeats);
        for rep in 0..repeats {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((col as u64) << 24) ^ rep as u64);
            let mut perm: Vec<usize> = (0..x.len()).collect();
            perm.shuffle(&mut rng);
            let shuffled: Vec<Vec<f64>> = x
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    let mut r = row.clone();
                    r[col] = x[perm[i]][col];
                    r
                })
                .collect();
            let score = r2(y, &model.predict(&shuffled));
            drops.push(baseline - score);
        }
        let mean = drops.iter().sum::<f64>() / repeats as f64;
        let var = drops.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / repeats as f64;
        out.push(FeatureImportance {
            column: col,
            mean_drop: mean,
            std_drop: var.sqrt(),
        });
    }
    out
}

/// Sort importances by decreasing mean drop.
pub fn ranked(mut importances: Vec<FeatureImportance>) -> Vec<FeatureImportance> {
    importances.sort_by(|a, b| b.mean_drop.total_cmp(&a.mean_drop));
    importances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecisionTreeRegressor, Regressor};

    #[test]
    fn informative_feature_ranks_above_noise() {
        // y depends on column 0 only; columns 1-2 are noise.
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i % 10) as f64,
                    ((i * 37) % 17) as f64,
                    ((i * 101) % 13) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut m = DecisionTreeRegressor::new(8, 2, 1);
        m.fit(&x, &y);
        let imp = permutation_importance(&m, &x, &y, 5, 42);
        assert!(
            imp[0].mean_drop > 0.5,
            "signal column drop {}",
            imp[0].mean_drop
        );
        assert!(
            imp[1].mean_drop < 0.1,
            "noise column drop {}",
            imp[1].mean_drop
        );
        assert!(imp[2].mean_drop < 0.1);
        let order = ranked(imp);
        assert_eq!(order[0].column, 0);
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let mut m = DecisionTreeRegressor::new(6, 2, 1);
        m.fit(&x, &y);
        let a = permutation_importance(&m, &x, &y, 3, 7);
        let b = permutation_importance(&m, &x, &y, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "repeats must be positive")]
    fn zero_repeats_panics() {
        let x = vec![vec![1.0]];
        let y = vec![1.0];
        let mut m = DecisionTreeRegressor::new(2, 2, 1);
        m.fit(&x, &y);
        let _ = permutation_importance(&m, &x, &y, 0, 0);
    }
}
