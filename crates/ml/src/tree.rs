//! CART regression trees (one of the paper's future-work models).

use crate::estimator::{check_training_set, Regressor};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A binary regression tree grown by variance reduction (CART).
///
/// # Example
///
/// ```
/// use ffr_ml::{DecisionTreeRegressor, Regressor};
///
/// let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![0.0, 0.0, 1.0, 1.0];
/// let mut t = DecisionTreeRegressor::new(4, 2, 1);
/// t.fit(&x, &y);
/// assert_eq!(t.predict_one(&[0.5]), 0.0);
/// assert_eq!(t.predict_one(&[2.5]), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    max_depth: usize,
    min_samples_split: usize,
    min_samples_leaf: usize,
    /// Features considered per split (`None` = all); used by the forest.
    max_features: Option<usize>,
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl DecisionTreeRegressor {
    /// Tree with the given growth limits.
    ///
    /// # Panics
    ///
    /// Panics if `min_samples_split < 2` or `min_samples_leaf == 0`.
    pub fn new(max_depth: usize, min_samples_split: usize, min_samples_leaf: usize) -> Self {
        assert!(min_samples_split >= 2);
        assert!(min_samples_leaf >= 1);
        DecisionTreeRegressor {
            max_depth,
            min_samples_split,
            min_samples_leaf,
            max_features: None,
            nodes: Vec::new(),
        }
    }

    /// Restrict each split to a random subset of features (random-forest
    /// style). Only effective through [`fit_with_rng`](Self::fit_with_rng).
    pub fn with_max_features(mut self, max_features: usize) -> Self {
        self.max_features = Some(max_features.max(1));
        self
    }

    /// Number of nodes in the fitted tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fit with an explicit RNG (needed when `max_features` is set).
    pub fn fit_with_rng(&mut self, x: &[Vec<f64>], y: &[f64], rng: Option<&mut ChaCha8Rng>) {
        check_training_set(x, y);
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = rng;
        self.grow(x, y, idx, 0, &mut rng);
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut Option<&mut ChaCha8Rng>,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let impure = idx.iter().any(|&i| (y[i] - mean).abs() > 1e-15);
        if depth >= self.max_depth || idx.len() < self.min_samples_split || !impure {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let d = x[0].len();
        let features: Vec<usize> = match (self.max_features, rng.as_deref_mut()) {
            (Some(k), Some(rng)) if k < d => {
                // Sample k distinct features.
                let mut all: Vec<usize> = (0..d).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..d);
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
            _ => (0..d).collect(),
        };

        let best = best_split(x, y, &idx, &features, self.min_samples_leaf);
        let Some((feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| x[i][feature] <= threshold);
        // Reserve the split node position before recursing.
        let node_index = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.grow(x, y, left_idx, depth + 1, rng);
        let right = self.grow(x, y, right_idx, depth + 1, rng);
        self.nodes[node_index] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_index
    }
}

/// Best `(feature, threshold)` by weighted-variance (SSE) reduction, or
/// `None` when no admissible split exists.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = idx.len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for &f in features {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
        // Prefix sums over the sorted order for O(1) SSE at each cut.
        let mut sum_left = 0.0;
        let mut sq_left = 0.0;
        let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();
        for cut in 1..n {
            let i = order[cut - 1];
            sum_left += y[i];
            sq_left += y[i] * y[i];
            // Can't split between equal feature values.
            if x[order[cut - 1]][f] == x[order[cut]][f] {
                continue;
            }
            if cut < min_leaf || n - cut < min_leaf {
                continue;
            }
            let nl = cut as f64;
            let nr = (n - cut) as f64;
            let sse_left = sq_left - sum_left * sum_left / nl;
            let sum_right = total_sum - sum_left;
            let sse_right = (total_sq - sq_left) - sum_right * sum_right / nr;
            let sse = sse_left + sse_right;
            let threshold = 0.5 * (x[order[cut - 1]][f] + x[order[cut]][f]);
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((f, threshold, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.fit_with_rng(x, y, None);
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "predict before fit");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn fits_piecewise_constant_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| match i {
                0..=9 => 1.0,
                10..=24 => 5.0,
                _ => -2.0,
            })
            .collect();
        let mut t = DecisionTreeRegressor::new(8, 2, 1);
        t.fit(&x, &y);
        let pred = t.predict(&x);
        assert_eq!(pred, y, "piecewise-constant target is exactly learnable");
    }

    #[test]
    fn depth_limit_controls_complexity() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 2) as f64).collect();
        let mut shallow = DecisionTreeRegressor::new(2, 2, 1);
        shallow.fit(&x, &y);
        let mut deep = DecisionTreeRegressor::new(12, 2, 1);
        deep.fit(&x, &y);
        assert!(shallow.num_nodes() < deep.num_nodes());
        let r_sh = r2(&y, &shallow.predict(&x));
        let r_dp = r2(&y, &deep.predict(&x));
        assert!(r_dp > r_sh, "deeper tree fits alternating target better");
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut t = DecisionTreeRegressor::new(10, 2, 5);
        t.fit(&x, &y);
        // With min_leaf = 5 on 10 points, only one split is possible.
        assert!(t.num_nodes() <= 3, "nodes = {}", t.num_nodes());
    }

    #[test]
    fn multivariate_split_selection() {
        // y depends only on feature 1; the tree must ignore feature 0.
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i * 7 % 13) as f64, if i < 25 { 0.0 } else { 1.0 }])
            .collect();
        let y: Vec<f64> = (0..50).map(|i| if i < 25 { -1.0 } else { 1.0 }).collect();
        let mut t = DecisionTreeRegressor::new(3, 2, 1);
        t.fit(&x, &y);
        assert_eq!(t.predict_one(&[5.0, 0.0]), -1.0);
        assert_eq!(t.predict_one(&[5.0, 1.0]), 1.0);
    }

    #[test]
    fn constant_target_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 10];
        let mut t = DecisionTreeRegressor::new(10, 2, 1);
        t.fit(&x, &y);
        assert_eq!(t.num_nodes(), 1, "pure node must not split");
        assert_eq!(t.predict_one(&[99.0]), 3.0);
    }
}
