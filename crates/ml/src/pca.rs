//! Principal Component Analysis.
//!
//! The paper's future-work section suggests "a dimension reduction should
//! be taken into account in order to avoid the curse of dimensionality";
//! this module provides exact PCA via a cyclic Jacobi eigensolver on the
//! feature covariance matrix (25×25 in the paper's setting — tiny).

use crate::linalg::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Component vectors, one row per component, sorted by decreasing
    /// eigenvalue.
    components: Vec<Vec<f64>>,
    /// Eigenvalues (variances along the components), same order.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a PCA retaining `n_components` directions.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty/ragged or `n_components` is 0 or exceeds the
    /// feature dimension.
    pub fn fit(x: &[Vec<f64>], n_components: usize) -> Pca {
        assert!(!x.is_empty(), "empty PCA input");
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged PCA input");
        assert!(
            n_components >= 1 && n_components <= d,
            "n_components {n_components} out of range 1..={d}"
        );
        let n = x.len() as f64;
        let mean: Vec<f64> = (0..d)
            .map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n)
            .collect();
        // Covariance matrix.
        let mut cov = Matrix::zeros(d, d);
        for r in x {
            for i in 0..d {
                let di = r[i] - mean[i];
                for j in i..d {
                    let v = cov.get(i, j) + di * (r[j] - mean[j]) / n;
                    cov.set(i, j, v);
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                let v = cov.get(j, i);
                cov.set(i, j, v);
            }
        }
        let (eigvals, eigvecs) = jacobi_eigen(&cov);
        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigvals[b].total_cmp(&eigvals[a]));
        let components: Vec<Vec<f64>> = order[..n_components]
            .iter()
            .map(|&k| (0..d).map(|i| eigvecs.get(i, k)).collect())
            .collect();
        let explained_variance: Vec<f64> = order[..n_components]
            .iter()
            .map(|&k| eigvals[k].max(0.0))
            .collect();
        Pca {
            mean,
            components,
            explained_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Variance captured by each retained component (decreasing).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the retained components.
    ///
    /// `total_variance` is the trace of the covariance matrix; pass the
    /// value from [`Pca::total_variance`] of the same data.
    pub fn explained_variance_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / total_variance
    }

    /// Total variance (covariance trace) of a dataset; companion to
    /// [`Pca::explained_variance_ratio`].
    pub fn total_variance(x: &[Vec<f64>]) -> f64 {
        let d = x[0].len();
        let n = x.len() as f64;
        (0..d)
            .map(|j| {
                let mean = x.iter().map(|r| r[j]).sum::<f64>() / n;
                x.iter().map(|r| (r[j] - mean) * (r[j] - mean)).sum::<f64>() / n
            })
            .sum()
    }

    /// Project one sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "PCA dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x)
                    .zip(&self.mean)
                    .map(|((ci, xi), mi)| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Project a batch.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_one(r)).collect()
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Returns
/// `(eigenvalues, eigenvector matrix)` with eigenvectors in columns.
fn jacobi_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }
    for _sweep in 0..100 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m.get(i, j).abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let eig: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    (eig, v)
}

impl Pca {
    /// The retained component vectors (unit length, decreasing variance).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points along the (1, 1) diagonal with small orthogonal noise.
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 * 0.1;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let pca = Pca::fit(&x, 1);
        let c = &pca.components()[0];
        let ratio = (c[0] / c[1]).abs();
        assert!((ratio - 1.0).abs() < 0.01, "component {c:?}");
        // Nearly all variance explained by one component.
        let total = Pca::total_variance(&x);
        assert!(pca.explained_variance_ratio(total) > 0.999);
    }

    #[test]
    fn projection_is_centered() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * 3 % 7) as f64, 5.0])
            .collect();
        let pca = Pca::fit(&x, 2);
        let t = pca.transform(&x);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "component {j} mean {mean}");
        }
        // The constant column contributes nothing.
        assert_eq!(t[0].len(), 2);
    }

    #[test]
    fn components_are_orthonormal() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    (i % 9) as f64,
                    (i % 5) as f64 * 2.0,
                    (i % 3) as f64 - (i % 7) as f64,
                ]
            })
            .collect();
        let pca = Pca::fit(&x, 3);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = pca.components()[i]
                    .iter()
                    .zip(&pca.components()[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8, "<c{i}, c{j}> = {dot}");
            }
        }
        // Eigenvalues are sorted decreasing.
        let ev = pca.explained_variance();
        assert!(ev.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_components_panics() {
        let x = vec![vec![1.0, 2.0]];
        let _ = Pca::fit(&x, 3);
    }
}
