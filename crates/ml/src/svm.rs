//! ε-Support-Vector Regression with an SMO solver (§IV-B.3 of the paper).
//!
//! The dual problem is solved in the LIBSVM formulation: the `2n`
//! variables `[α; α*]` carry signs `s = [+1; −1]`, the quadratic term is
//! `Q_ab = s_a s_b K(x_a, x_b)` and the linear term is `p = [ε − y; ε + y]`.
//! Pairs are selected by the maximal-violating-pair rule and updated
//! analytically until the KKT gap falls below `tol`.
//!
//! The paper's tuned model (`C = 3.5`, RBF `γ = 0.055`, `ε = 0.025`) is
//! available as [`SvrRegressor::paper_tuned`].

// Index-based loops mirror the textbook formulations of these kernels.
#![allow(clippy::needless_range_loop)]
use crate::estimator::{check_training_set, Regressor};

/// Kernel functions for [`SvrRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Dot product (linear SVR).
    Linear,
    /// Radial basis function `exp(-γ‖a−b‖²)` (the paper's choice).
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Polynomial `(γ·aᵀb + coef0)^degree`.
    Poly {
        /// Scale γ.
        gamma: f64,
        /// Degree.
        degree: u32,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluate the kernel.
    pub fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Poly {
                gamma,
                degree,
                coef0,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// ε-SVR trained by Sequential Minimal Optimisation.
#[derive(Debug, Clone)]
pub struct SvrRegressor {
    c: f64,
    epsilon: f64,
    kernel: Kernel,
    tol: f64,
    max_iter: usize,
    support_x: Vec<Vec<f64>>,
    support_beta: Vec<f64>,
    bias: f64,
    iterations: usize,
}

impl SvrRegressor {
    /// New SVR with penalty `c`, tube width `epsilon` and the given
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0` or `epsilon < 0`.
    pub fn new(c: f64, epsilon: f64, kernel: Kernel) -> SvrRegressor {
        assert!(c > 0.0, "C must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        SvrRegressor {
            c,
            epsilon,
            kernel,
            tol: 1e-3,
            max_iter: 200_000,
            support_x: Vec::new(),
            support_beta: Vec::new(),
            bias: 0.0,
            iterations: 0,
        }
    }

    /// The paper's tuned configuration: `C = 3.5`, RBF `γ = 0.055`,
    /// `ε = 0.025`.
    pub fn paper_tuned() -> SvrRegressor {
        SvrRegressor::new(3.5, 0.025, Kernel::Rbf { gamma: 0.055 })
    }

    /// Override the KKT stopping tolerance (default `1e-3`).
    pub fn with_tol(mut self, tol: f64) -> SvrRegressor {
        self.tol = tol;
        self
    }

    /// Override the iteration budget (default 200 000).
    pub fn with_max_iter(mut self, max_iter: usize) -> SvrRegressor {
        self.max_iter = max_iter;
        self
    }

    /// Number of support vectors after fitting.
    pub fn num_support_vectors(&self) -> usize {
        self.support_x.len()
    }

    /// SMO iterations the last fit used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        check_training_set(x, y);
        let n = x.len();
        let m = 2 * n;

        // Kernel matrix cache.
        let mut kmat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = self.kernel.eval(&x[i], &x[j]);
                kmat[i * n + j] = v;
                kmat[j * n + i] = v;
            }
        }
        let q = |a: usize, b: usize| -> f64 {
            let sa = if a < n { 1.0 } else { -1.0 };
            let sb = if b < n { 1.0 } else { -1.0 };
            sa * sb * kmat[(a % n) * n + (b % n)]
        };
        let sign = |a: usize| -> f64 {
            if a < n {
                1.0
            } else {
                -1.0
            }
        };

        let mut alpha = vec![0.0f64; m];
        // Gradient of the dual objective; at alpha = 0 it equals p.
        let mut grad: Vec<f64> = (0..m)
            .map(|a| {
                if a < n {
                    self.epsilon - y[a]
                } else {
                    self.epsilon + y[a - n]
                }
            })
            .collect();

        let c = self.c;
        let mut iter = 0usize;
        while iter < self.max_iter {
            iter += 1;
            // Maximal violating pair over -s_a * grad_a.
            let mut i_best: Option<usize> = None;
            let mut i_val = f64::NEG_INFINITY;
            let mut j_best: Option<usize> = None;
            let mut j_val = f64::INFINITY;
            for a in 0..m {
                let s = sign(a);
                let v = -s * grad[a];
                let in_up = (s > 0.0 && alpha[a] < c) || (s < 0.0 && alpha[a] > 0.0);
                let in_low = (s > 0.0 && alpha[a] > 0.0) || (s < 0.0 && alpha[a] < c);
                if in_up && v > i_val {
                    i_val = v;
                    i_best = Some(a);
                }
                if in_low && v < j_val {
                    j_val = v;
                    j_best = Some(a);
                }
            }
            let (Some(i), Some(j)) = (i_best, j_best) else {
                break;
            };
            if i_val - j_val < self.tol {
                break;
            }

            let si = sign(i);
            let sj = sign(j);
            let qii = q(i, i);
            let qjj = q(j, j);
            let qij = q(i, j);
            let old_ai = alpha[i];
            let old_aj = alpha[j];

            if si != sj {
                let quad = (qii + qjj + 2.0 * qij).max(1e-12);
                let delta = (-grad[i] - grad[j]) / quad;
                let diff = alpha[i] - alpha[j];
                alpha[i] += delta;
                alpha[j] += delta;
                if diff > 0.0 && alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                } else if diff <= 0.0 && alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = -diff;
                }
                if diff > 0.0 && alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                } else if diff <= 0.0 && alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = c + diff;
                }
            } else {
                let quad = (qii + qjj - 2.0 * qij).max(1e-12);
                let delta = (grad[i] - grad[j]) / quad;
                let sum = alpha[i] + alpha[j];
                alpha[i] -= delta;
                alpha[j] += delta;
                if sum > c && alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = sum - c;
                } else if sum <= c && alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = sum;
                }
                if sum > c && alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = sum - c;
                } else if sum <= c && alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = sum;
                }
            }

            let di = alpha[i] - old_ai;
            let dj = alpha[j] - old_aj;
            if di == 0.0 && dj == 0.0 {
                break; // numerically stuck; the gap is already tiny
            }
            for b in 0..m {
                grad[b] += q(b, i) * di + q(b, j) * dj;
            }
        }
        self.iterations = iter;

        // Bias from free variables (fallback: violating-pair midpoint).
        let mut rho_sum = 0.0;
        let mut rho_n = 0usize;
        for a in 0..m {
            if alpha[a] > 1e-9 && alpha[a] < c - 1e-9 {
                rho_sum += sign(a) * grad[a];
                rho_n += 1;
            }
        }
        let rho = if rho_n > 0 {
            rho_sum / rho_n as f64
        } else {
            let mut up = f64::NEG_INFINITY;
            let mut low = f64::INFINITY;
            for a in 0..m {
                let s = sign(a);
                let v = -s * grad[a];
                let in_up = (s > 0.0 && alpha[a] < c) || (s < 0.0 && alpha[a] > 0.0);
                let in_low = (s > 0.0 && alpha[a] > 0.0) || (s < 0.0 && alpha[a] < c);
                if in_up {
                    up = up.max(v);
                }
                if in_low {
                    low = low.min(v);
                }
            }
            -(up + low) / 2.0
        };
        self.bias = -rho;

        // Collapse to support vectors: beta_i = alpha_i - alpha*_i.
        self.support_x.clear();
        self.support_beta.clear();
        for i in 0..n {
            let beta = alpha[i] - alpha[i + n];
            if beta.abs() > 1e-9 {
                self.support_x.push(x[i].clone());
                self.support_beta.push(beta);
            }
        }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        assert!(
            !self.support_x.is_empty() || self.bias != 0.0 || self.iterations > 0,
            "predict before fit"
        );
        let mut f = self.bias;
        for (sv, beta) in self.support_x.iter().zip(&self.support_beta) {
            f += beta * self.kernel.eval(sv, x);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;
    use crate::LinearRegression;

    #[test]
    fn linear_kernel_fits_linear_data() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|r| 0.8 * r[0] + 0.3).collect();
        let mut m = SvrRegressor::new(10.0, 0.01, Kernel::Linear);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) > 0.99, "r2 = {}", r2(&y, &pred));
        // Predictions stay within roughly the epsilon tube.
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 0.05, "{p} vs {t}");
        }
    }

    #[test]
    fn rbf_fits_nonlinear_target_where_linear_fails() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let mut svr = SvrRegressor::new(10.0, 0.01, Kernel::Rbf { gamma: 1.0 });
        svr.fit(&x, &y);
        let svr_r2 = r2(&y, &svr.predict(&x));
        let mut lin = LinearRegression::new();
        lin.fit(&x, &y);
        let lin_r2 = r2(&y, &lin.predict(&x));
        assert!(svr_r2 > 0.98, "svr r2 = {svr_r2}");
        assert!(svr_r2 > lin_r2 + 0.2, "svr {svr_r2} vs linear {lin_r2}");
    }

    #[test]
    fn wide_tube_produces_sparse_model() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.05]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
        let mut tight = SvrRegressor::new(5.0, 0.001, Kernel::Linear);
        tight.fit(&x, &y);
        let mut wide = SvrRegressor::new(5.0, 0.5, Kernel::Linear);
        wide.fit(&x, &y);
        assert!(
            wide.num_support_vectors() <= tight.num_support_vectors(),
            "wider tube cannot need more SVs ({} vs {})",
            wide.num_support_vectors(),
            tight.num_support_vectors()
        );
        assert!(wide.num_support_vectors() < 50, "tube excludes points");
    }

    #[test]
    fn poly_kernel_fits_quadratic() {
        let x: Vec<Vec<f64>> = (-10..=10).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut m = SvrRegressor::new(
            50.0,
            0.005,
            Kernel::Poly {
                gamma: 1.0,
                degree: 2,
                coef0: 1.0,
            },
        );
        m.fit(&x, &y);
        assert!(r2(&y, &m.predict(&x)) > 0.98);
    }

    #[test]
    fn kkt_tube_condition_holds() {
        // Non-support points must lie inside the epsilon tube (up to tol).
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = x.iter().map(|r| 0.5 * r[0] + 1.0).collect();
        let eps = 0.1;
        let mut m = SvrRegressor::new(10.0, eps, Kernel::Linear).with_tol(1e-4);
        m.fit(&x, &y);
        let sv_set: std::collections::HashSet<u64> = m
            .support_x
            .iter()
            .map(|sv| (sv[0] * 1000.0).round() as u64)
            .collect();
        for (xi, yi) in x.iter().zip(&y) {
            if !sv_set.contains(&((xi[0] * 1000.0).round() as u64)) {
                let f = m.predict_one(xi);
                assert!(
                    (f - yi).abs() <= eps + 1e-2,
                    "non-SV outside tube: |{f} - {yi}| > {eps}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn invalid_c_panics() {
        let _ = SvrRegressor::new(0.0, 0.1, Kernel::Linear);
    }
}
