//! The circuit corpus: seeded, size-parameterized generators behind a
//! stable-id catalog.
//!
//! The estimator is only credible if it generalizes beyond the circuits
//! it was tuned on. This module turns the crate's building blocks into a
//! **corpus**: every generator is parametric (size) and — where the
//! structure admits it — seeded, each concrete instance has a stable
//! string id (`fifo2x8`, `mix3s7`, …), and the [`Corpus`] catalog
//! registers both generated instances and Verilog-imported designs under
//! the same namespace. The campaign CLI resolves `--circuit corpus:<id>`
//! through [`resolve`]; the conformance suites (`cone_equivalence`,
//! `cone_classification`, `verilog_roundtrip`) use [`CorpusSpec::sampled`]
//! as a property-test generator of arbitrary valid circuits.

use crate::{components, small};
use ffr_netlist::{verilog, Bus, Netlist, NetlistBuilder};

/// A parametric, seeded corpus generator instance.
///
/// Every variant builds a validated [`Netlist`]; [`CorpusSpec::id`] and
/// [`CorpusSpec::parse`] round-trip the stable string form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CorpusSpec {
    /// Enabled wrap-around counter (`cnt<width>`).
    Counter {
        /// Counter width in bits.
        width: usize,
    },
    /// LFSR + register pipeline (`lfsr<width>x<depth>`).
    LfsrPipeline {
        /// LFSR width in bits (tap table: 4, 8, 16, 24, 32).
        width: usize,
        /// Pipeline depth in stages.
        depth: usize,
    },
    /// Registered ALU (`alu<width>`).
    Alu {
        /// Operand width in bits.
        width: usize,
    },
    /// Synchronous FIFO (`fifo<addr_bits>x<width>`).
    Fifo {
        /// log2 of the entry count.
        addr_bits: usize,
        /// Data width in bits.
        width: usize,
    },
    /// Registered CRC-32 accumulator (`crc<width>`).
    Crc {
        /// Data-input width in bits.
        width: usize,
    },
    /// Write-decoded register file with a registered read port
    /// (`regfile<addr_bits>x<width>`).
    RegFile {
        /// log2 of the register count.
        addr_bits: usize,
        /// Register width in bits.
        width: usize,
    },
    /// Seeded counter/pipeline mix (`mix<stages>s<seed>`): the stage
    /// composition is drawn from the seed, so every seed is a
    /// structurally different circuit.
    Mix {
        /// Number of pipeline stages.
        stages: usize,
        /// Structural seed.
        seed: u64,
    },
}

/// Supported LFSR widths (the component's tap table).
const LFSR_WIDTHS: [usize; 5] = [4, 8, 16, 24, 32];

impl CorpusSpec {
    /// Stable corpus id of this instance: `cnt8`, `lfsr8x2`, `alu4`,
    /// `fifo2x8`, `crc8`, `regfile2x4`, `mix3s7`.
    pub fn id(&self) -> String {
        match self {
            CorpusSpec::Counter { width } => format!("cnt{width}"),
            CorpusSpec::LfsrPipeline { width, depth } => format!("lfsr{width}x{depth}"),
            CorpusSpec::Alu { width } => format!("alu{width}"),
            CorpusSpec::Fifo { addr_bits, width } => format!("fifo{addr_bits}x{width}"),
            CorpusSpec::Crc { width } => format!("crc{width}"),
            CorpusSpec::RegFile { addr_bits, width } => format!("regfile{addr_bits}x{width}"),
            CorpusSpec::Mix { stages, seed } => format!("mix{stages}s{seed}"),
        }
    }

    /// Parse a corpus id back into its spec (inverse of [`CorpusSpec::id`]).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for unknown generator names or
    /// out-of-range parameters.
    pub fn parse(id: &str) -> Result<CorpusSpec, String> {
        let split = id.find(|c: char| c.is_ascii_digit()).ok_or_else(|| {
            format!("corpus id `{id}` has no size parameter (expected e.g. cnt8, fifo2x8)")
        })?;
        let (name, params) = id.split_at(split);
        let one = |p: &str| -> Result<usize, String> {
            p.parse::<usize>()
                .map_err(|e| format!("bad parameter `{p}` in corpus id `{id}`: {e}"))
        };
        let two = |p: &str| -> Result<(usize, usize), String> {
            let (a, b) = p
                .split_once('x')
                .ok_or_else(|| format!("corpus id `{id}` needs two parameters (e.g. {name}2x8)"))?;
            Ok((one(a)?, one(b)?))
        };
        let spec = match name {
            "cnt" => CorpusSpec::Counter {
                width: one(params)?,
            },
            "lfsr" => {
                let (width, depth) = two(params)?;
                CorpusSpec::LfsrPipeline { width, depth }
            }
            "alu" => CorpusSpec::Alu {
                width: one(params)?,
            },
            "fifo" => {
                let (addr_bits, width) = two(params)?;
                CorpusSpec::Fifo { addr_bits, width }
            }
            "crc" => CorpusSpec::Crc {
                width: one(params)?,
            },
            "regfile" => {
                let (addr_bits, width) = two(params)?;
                CorpusSpec::RegFile { addr_bits, width }
            }
            "mix" => {
                let (stages, seed) = params
                    .split_once('s')
                    .ok_or_else(|| format!("corpus id `{id}` needs a seed (e.g. mix3s7)"))?;
                CorpusSpec::Mix {
                    stages: one(stages)?,
                    seed: seed
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed `{seed}` in corpus id `{id}`: {e}"))?,
                }
            }
            other => {
                return Err(format!(
                    "unknown corpus generator `{other}` in `{id}` \
                     (expected one of: cnt, lfsr, alu, fifo, crc, regfile, mix)"
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the parameter ranges the generators support.
    fn validate(&self) -> Result<(), String> {
        let bounded = |v: usize, lo: usize, hi: usize, what: &str| {
            if (lo..=hi).contains(&v) {
                Ok(())
            } else {
                Err(format!(
                    "{what} {v} out of range {lo}..={hi} for `{}`",
                    self.id()
                ))
            }
        };
        match *self {
            CorpusSpec::Counter { width } | CorpusSpec::Alu { width } => {
                bounded(width, 1, 64, "width")
            }
            CorpusSpec::LfsrPipeline { width, depth } => {
                if !LFSR_WIDTHS.contains(&width) {
                    return Err(format!(
                        "lfsr width {width} unsupported (tap table covers 4, 8, 16, 24, 32)"
                    ));
                }
                bounded(depth, 1, 16, "depth")
            }
            CorpusSpec::Fifo { addr_bits, width } | CorpusSpec::RegFile { addr_bits, width } => {
                bounded(addr_bits, 1, 6, "addr_bits")?;
                bounded(width, 1, 64, "width")
            }
            CorpusSpec::Crc { width } => bounded(width, 1, 64, "width"),
            CorpusSpec::Mix { stages, .. } => bounded(stages, 1, 12, "stages"),
        }
    }

    /// A bounded, always-valid spec from free integers — the
    /// property-test generator behind the corpus conformance suites.
    ///
    /// `kind` selects the generator family (mod 7), `size_a`/`size_b`
    /// select small sizes within each family's bounds and `seed` feeds
    /// the seeded families. Sizes are capped so every sampled circuit
    /// stays property-test cheap (tens of flip-flops, shallow depth).
    pub fn sampled(kind: usize, size_a: usize, size_b: usize, seed: u64) -> CorpusSpec {
        let spec = match kind % 7 {
            0 => CorpusSpec::Counter {
                width: 2 + size_a % 7,
            },
            1 => CorpusSpec::LfsrPipeline {
                width: if size_b.is_multiple_of(2) { 4 } else { 8 },
                depth: 1 + size_a % 3,
            },
            2 => CorpusSpec::Alu {
                width: 2 + size_a % 5,
            },
            3 => CorpusSpec::Fifo {
                addr_bits: 1 + size_a % 2,
                width: 1 + size_b % 6,
            },
            4 => CorpusSpec::Crc {
                width: 1 + size_a % 8,
            },
            5 => CorpusSpec::RegFile {
                addr_bits: 1 + size_a % 2,
                width: 1 + size_b % 4,
            },
            _ => CorpusSpec::Mix {
                stages: 1 + size_a % 4,
                seed,
            },
        };
        spec.validate().expect("sampled specs stay in range");
        spec
    }

    /// Build the netlist of this instance.
    pub fn build(&self) -> Netlist {
        match *self {
            CorpusSpec::Counter { width } => small::counter_circuit(width),
            CorpusSpec::LfsrPipeline { width, depth } => small::lfsr_pipeline(width, depth),
            CorpusSpec::Alu { width } => small::alu_circuit(width),
            CorpusSpec::Fifo { addr_bits, width } => fifo_circuit(addr_bits, width),
            CorpusSpec::Crc { width } => crc_circuit(width),
            CorpusSpec::RegFile { addr_bits, width } => register_file(addr_bits, width),
            CorpusSpec::Mix { stages, seed } => mix_circuit(stages, seed),
        }
    }
}

/// A synchronous FIFO as a standalone circuit.
///
/// Ports: inputs `wr_en`, `wr_data[width]`, `rd_en`; outputs
/// `rd_data[width]`, `empty`, `full`, `level[addr_bits+1]`.
///
/// The storage rows give the design an occupancy-dependent FDR
/// population: a flipped entry is benign unless it is read out while
/// valid.
pub fn fifo_circuit(addr_bits: usize, width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("fifo_circuit");
    let wr_en = b.input("wr_en", 1);
    let wr_data = b.input("wr_data", width);
    let rd_en = b.input("rd_en", 1);
    let ports = components::sync_fifo(&mut b, "f", addr_bits, &wr_en, &wr_data, &rd_en);
    b.output("rd_data", &ports.rd_data);
    b.output("empty", &ports.empty);
    b.output("full", &ports.full);
    b.output("level", &ports.level);
    b.finish().expect("fifo circuit is well formed")
}

/// A registered CRC-32 accumulator over a `width`-bit input word.
///
/// Ports: inputs `en`, `clear`, `data[width]`; outputs `crc[32]`,
/// `nonzero`. `clear` synchronously reloads the IEEE 802.3 preset
/// (all-ones); `en` folds one data word per cycle.
pub fn crc_circuit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("crc_circuit");
    let en = b.input("en", 1);
    let clear = b.input("clear", 1);
    let data = b.input("data", width);
    let crc = b.reg_init("crc", 32, 0xFFFF_FFFF);
    let next = components::crc32_update(&mut b, &crc.q(), &data);
    b.connect_en_rst(&crc, Some(&en), Some((&clear, 0xFFFF_FFFF)), &next)
        .expect("crc register connected once");
    let nonzero = b.reduce_or(&crc.q());
    b.output("crc", &crc.q());
    b.output("nonzero", &nonzero);
    b.finish().expect("crc circuit is well formed")
}

/// A `2^addr_bits × width` register file: one-hot write decode, a
/// registered read port and a write-count statistics counter.
///
/// Ports: inputs `wen`, `waddr[addr_bits]`, `wdata[width]`,
/// `raddr[addr_bits]`; outputs `rdata[width]`, `parity`,
/// `writes[addr_bits+2]`.
///
/// Rows that are rarely addressed are nearly benign while the read
/// register is critical — the skewed FDR population the estimator has to
/// capture on storage-heavy designs.
pub fn register_file(addr_bits: usize, width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("register_file");
    let wen = b.input("wen", 1);
    let waddr = b.input("waddr", addr_bits);
    let wdata = b.input("wdata", width);
    let raddr = b.input("raddr", addr_bits);

    let wsel = b.decode(&waddr);
    let rows: Vec<Bus> = (0..1usize << addr_bits)
        .map(|i| {
            let row = b.reg(&format!("row{i}"), width);
            let en = b.and(&wen, &wsel.bit(i));
            b.connect_en(&row, &en, &wdata)
                .expect("register-file row connected once");
            row.q()
        })
        .collect();
    let rdata_comb = b.select(&raddr, &rows);
    let rdata = b.reg("rdata", width);
    b.connect(&rdata, &rdata_comb)
        .expect("read register connected once");
    let parity = b.reduce_xor(&rdata.q());

    // Benign statistics: number of write strobes observed.
    let writes = components::counter(&mut b, "writes", addr_bits + 2, &wen, None);

    b.output("rdata", &rdata.q());
    b.output("parity", &parity);
    b.output("writes", &writes.q());
    b.finish().expect("register file is well formed")
}

/// A seeded counter/pipeline mix: `stages` transformation stages over a
/// data bus, each drawn from the seed (register, xor-rotate, counter
/// add, LFSR mux-cross, parity fold-in), ending in data + parity
/// outputs.
///
/// Ports: inputs `en`, `din[width]`; outputs `dout[width]`, `parity`,
/// `beat[4]`. The width (4 or 8) also comes from the seed.
pub fn mix_circuit(stages: usize, seed: u64) -> Netlist {
    assert!(stages >= 1, "mix circuit needs at least one stage");
    let mut b = NetlistBuilder::new("mix_circuit");
    // Deterministic structural choices from a tiny LCG over the seed.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut draw = |n: u64| -> u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    let width = if draw(2) == 0 { 4 } else { 8 };

    let en = b.input("en", 1);
    let din = b.input("din", width);
    // A free-running heartbeat shared by the stages.
    let beat = components::counter(&mut b, "beat", 4, &en, None);

    let mut data = din.clone();
    for i in 0..stages {
        data = match draw(5) {
            0 => {
                // Plain pipeline register.
                let r = b.reg(&format!("pipe{i}"), width);
                b.connect_en(&r, &en, &data).expect("pipe stage");
                r.q()
            }
            1 => {
                // Xor with a 1-bit rotation of itself, registered.
                let rotated = data.slice(1..width).concat(&data.bit(0));
                let x = b.xor(&data, &rotated);
                let r = b.reg(&format!("rot{i}"), width);
                b.connect_en(&r, &en, &x).expect("rotate stage");
                r.q()
            }
            2 => {
                // Add the heartbeat (zero-extended), registered.
                let beat_ext = if width > 4 {
                    beat.q().concat(&b.lit(width - 4, 0))
                } else {
                    beat.q().slice(0..width)
                };
                let (sum, _) = b.add(&data, &beat_ext);
                let r = b.reg(&format!("add{i}"), width);
                b.connect_en(&r, &en, &sum).expect("add stage");
                r.q()
            }
            3 => {
                // Mux-cross against a private LFSR stream.
                let l = components::lfsr(&mut b, &format!("lfsr{i}"), 4, &en);
                let pick = l.q().bit(0);
                let swapped = data
                    .slice(width / 2..width)
                    .concat(&data.slice(0..width / 2));
                let m = b.mux(&pick, &data, &swapped);
                let r = b.reg(&format!("cross{i}"), width);
                b.connect_en(&r, &en, &m).expect("cross stage");
                r.q()
            }
            _ => {
                // Fold the stage parity into bit 0, registered.
                let p = b.reduce_xor(&data);
                let folded = b.xor(&data.bit(0), &p);
                let next = folded.concat(&data.slice(1..width));
                let r = b.reg(&format!("fold{i}"), width);
                b.connect_en(&r, &en, &next).expect("fold stage");
                r.q()
            }
        };
    }

    let parity = b.reduce_xor(&data);
    b.output("dout", &data);
    b.output("parity", &parity);
    b.output("beat", &beat.q());
    b.finish().expect("mix circuit is well formed")
}

/// One catalog entry: a stable id bound to a generated or imported
/// design.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    id: String,
    source: CorpusSource,
}

#[derive(Debug, Clone)]
enum CorpusSource {
    Generated(CorpusSpec),
    Imported(Box<Netlist>),
}

impl CorpusEntry {
    /// The entry's stable id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The generator spec, for generated entries.
    pub fn spec(&self) -> Option<&CorpusSpec> {
        match &self.source {
            CorpusSource::Generated(spec) => Some(spec),
            CorpusSource::Imported(_) => None,
        }
    }

    /// `true` for Verilog-imported entries.
    pub fn is_imported(&self) -> bool {
        matches!(self.source, CorpusSource::Imported(_))
    }

    /// Build (or clone) the entry's netlist.
    pub fn build(&self) -> Netlist {
        match &self.source {
            CorpusSource::Generated(spec) => spec.build(),
            CorpusSource::Imported(netlist) => (**netlist).clone(),
        }
    }
}

/// The circuit-corpus catalog: stable ids → buildable designs.
///
/// [`Corpus::standard`] is the committed catalog the conformance suites,
/// the transfer study and CI iterate over; [`Corpus::register_verilog`]
/// routes imported designs through the same namespace.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty catalog.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// The standard generated catalog: two sizes per generator family
    /// plus three seeded mixes. Ids are stable — tests, docs and store
    /// artifacts reference them.
    pub fn standard() -> Corpus {
        let specs = [
            CorpusSpec::Counter { width: 8 },
            CorpusSpec::Counter { width: 16 },
            CorpusSpec::LfsrPipeline { width: 8, depth: 2 },
            CorpusSpec::LfsrPipeline {
                width: 16,
                depth: 4,
            },
            CorpusSpec::Alu { width: 4 },
            CorpusSpec::Alu { width: 8 },
            CorpusSpec::Fifo {
                addr_bits: 2,
                width: 4,
            },
            CorpusSpec::Fifo {
                addr_bits: 3,
                width: 8,
            },
            CorpusSpec::Crc { width: 4 },
            CorpusSpec::Crc { width: 8 },
            CorpusSpec::RegFile {
                addr_bits: 2,
                width: 4,
            },
            CorpusSpec::RegFile {
                addr_bits: 3,
                width: 8,
            },
            CorpusSpec::Mix { stages: 3, seed: 1 },
            CorpusSpec::Mix { stages: 4, seed: 7 },
            CorpusSpec::Mix {
                stages: 5,
                seed: 23,
            },
        ];
        let mut corpus = Corpus::new();
        for spec in specs {
            corpus
                .register(spec)
                .expect("standard catalog ids are unique");
        }
        corpus
    }

    /// Register a generated instance under its canonical id.
    ///
    /// # Errors
    ///
    /// Fails on invalid parameters or a duplicate id.
    pub fn register(&mut self, spec: CorpusSpec) -> Result<(), String> {
        spec.validate()?;
        let id = spec.id();
        self.check_fresh(&id)?;
        self.entries.push(CorpusEntry {
            id,
            source: CorpusSource::Generated(spec),
        });
        Ok(())
    }

    /// Parse structural Verilog and register the design under `id` —
    /// imported designs live in the same catalog namespace as generated
    /// ones, so everything downstream (campaigns, features, transfer)
    /// treats them identically.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate id, a parse error, or an invalid netlist.
    pub fn register_verilog(&mut self, id: &str, source: &str) -> Result<(), String> {
        self.check_fresh(id)?;
        let netlist = verilog::parse(source).map_err(|e| format!("import `{id}`: {e}"))?;
        self.entries.push(CorpusEntry {
            id: id.to_string(),
            source: CorpusSource::Imported(Box::new(netlist)),
        });
        Ok(())
    }

    fn check_fresh(&self, id: &str) -> Result<(), String> {
        if self.entries.iter().any(|e| e.id == id) {
            return Err(format!("corpus id `{id}` is already registered"));
        }
        Ok(())
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// All ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Look up an entry by id.
    pub fn get(&self, id: &str) -> Option<&CorpusEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Build the netlist registered under `id`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown id.
    pub fn build(&self, id: &str) -> Result<Netlist, String> {
        self.get(id)
            .map(CorpusEntry::build)
            .ok_or_else(|| format!("corpus id `{id}` is not registered"))
    }
}

/// Resolve a corpus id to a netlist: a [`Corpus::standard`] entry, or any
/// valid [`CorpusSpec`] id (sizes beyond the standard catalog work too).
/// This is what `ffr run --circuit corpus:<id>` goes through.
///
/// # Errors
///
/// Fails when the id neither names a standard entry nor parses as a spec.
pub fn resolve(id: &str) -> Result<Netlist, String> {
    if let Ok(netlist) = Corpus::standard().build(id) {
        return Ok(netlist);
    }
    CorpusSpec::parse(id).map(|spec| spec.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_sim::{CompiledCircuit, SimState};

    #[test]
    fn standard_catalog_ids_are_stable() {
        let ids: Vec<String> = Corpus::standard().ids().map(str::to_string).collect();
        assert_eq!(
            ids,
            [
                "cnt8",
                "cnt16",
                "lfsr8x2",
                "lfsr16x4",
                "alu4",
                "alu8",
                "fifo2x4",
                "fifo3x8",
                "crc4",
                "crc8",
                "regfile2x4",
                "regfile3x8",
                "mix3s1",
                "mix4s7",
                "mix5s23",
            ]
        );
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for entry in Corpus::standard().entries() {
            let spec = entry.spec().expect("standard catalog is generated");
            let parsed = CorpusSpec::parse(entry.id()).unwrap();
            assert_eq!(&parsed, spec, "{}", entry.id());
            assert_eq!(parsed.id(), entry.id());
        }
        assert!(CorpusSpec::parse("bogus9").is_err());
        assert!(CorpusSpec::parse("cnt").is_err());
        assert!(CorpusSpec::parse("fifo9x9").is_err(), "addr_bits bound");
        assert!(CorpusSpec::parse("lfsr5x2").is_err(), "tap table bound");
        assert!(CorpusSpec::parse("mix3").is_err(), "mix needs a seed");
    }

    #[test]
    fn every_standard_entry_builds_compiles_and_hashes_stably() {
        for entry in Corpus::standard().entries() {
            let netlist = entry.build();
            assert!(netlist.num_ffs() > 0, "{} has flip-flops", entry.id());
            assert_eq!(
                netlist.content_hash(),
                entry.build().content_hash(),
                "{} rebuild is structurally identical",
                entry.id()
            );
            CompiledCircuit::compile(netlist)
                .unwrap_or_else(|e| panic!("{} compiles: {e}", entry.id()));
        }
    }

    #[test]
    fn sampled_specs_always_build() {
        for kind in 0..7 {
            for a in 0..4 {
                for (b_param, seed) in [(0, 0u64), (3, 0x5EED), (5, u64::MAX)] {
                    let spec = CorpusSpec::sampled(kind, a, b_param, seed);
                    let netlist = spec.build();
                    CompiledCircuit::compile(netlist)
                        .unwrap_or_else(|e| panic!("{} compiles: {e}", spec.id()));
                }
            }
        }
    }

    #[test]
    fn mix_seed_changes_structure() {
        let a = mix_circuit(4, 1);
        let b = mix_circuit(4, 2);
        assert_ne!(
            a.content_hash(),
            b.content_hash(),
            "different seeds give different structures"
        );
        let a2 = mix_circuit(4, 1);
        assert_eq!(a.content_hash(), a2.content_hash(), "same seed rebuilds");
    }

    #[test]
    fn register_file_reads_back_writes() {
        let cc = CompiledCircuit::compile(register_file(2, 4)).unwrap();
        let mut s = SimState::new(&cc);
        // Write 0b1010 to row 3: wen=1, waddr=3, wdata=0b1010, raddr=3.
        let set_bus = |s: &mut SimState, base: usize, width: usize, v: u64| {
            for i in 0..width {
                s.set_input(&cc, base + i, (v >> i) & 1 == 1);
            }
        };
        s.set_input(&cc, 0, true); // wen
        set_bus(&mut s, 1, 2, 3); // waddr
        set_bus(&mut s, 3, 4, 0b1010); // wdata
        set_bus(&mut s, 7, 2, 3); // raddr
        s.eval(&cc);
        s.tick(&cc); // row3 <- 0b1010
        s.set_input(&cc, 0, false);
        s.eval(&cc);
        s.tick(&cc); // rdata <- row3
        s.eval(&cc);
        let rdata = (0..4).fold(0u64, |acc, i| acc | ((s.output_word(&cc, i) & 1) << i));
        assert_eq!(rdata, 0b1010);
    }

    #[test]
    fn imported_verilog_shares_the_catalog() {
        let netlist = small::counter_circuit(6);
        let text = verilog::emit(&netlist);
        let mut corpus = Corpus::new();
        corpus.register_verilog("imported-cnt6", &text).unwrap();
        let entry = corpus.get("imported-cnt6").unwrap();
        assert!(entry.is_imported());
        assert_eq!(
            entry.build().content_hash(),
            netlist.content_hash(),
            "imported design is structurally identical to its source"
        );
        // Duplicate ids are rejected across source kinds.
        assert!(corpus.register(CorpusSpec::Counter { width: 8 }).is_ok());
        assert!(corpus.register(CorpusSpec::Counter { width: 8 }).is_err());
        assert!(corpus.register_verilog("cnt8", &text).is_err());
    }
}
