//! Circuit designs and testbenches for the FDR estimation pipeline.
//!
//! The centrepiece is [`Mac10ge`]: a parameterized, synthesizable-style
//! gate-level design modelled on the OpenCores 10GE MAC the paper evaluates —
//! TX/RX packet FIFOs, CRC32 generation and checking, framing state
//! machines, an XGMII-style word interface and an internal TX→RX loopback.
//! Its default configuration elaborates to roughly the paper's 1054
//! flip-flops.
//!
//! The crate also provides:
//!
//! * [`components`] — reusable RTL building blocks (synchronous FIFO, CRC32,
//!   LFSR, counters, shift registers) used by the MAC and usable on their
//!   own,
//! * [`small`] — compact circuits (counter, LFSR pipeline, ALU,
//!   traffic-light FSM) for unit tests, examples and fast campaigns,
//! * [`MacTestbench`] — the packet loopback stimulus, golden packet capture
//!   and the failure classification rules from the paper (§IV-A: *payload
//!   corruption* or *the circuit stopped sending or receiving data*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod corpus;
mod mac10ge;
mod mac_tb;
pub mod small;

pub use mac10ge::{Mac10ge, Mac10geConfig};
pub use mac_tb::{MacJudge, MacTestbench, Packet, PacketExtractor, TrafficConfig};
