//! Small, fast-to-simulate circuits for tests, examples and quick
//! campaigns.
//!
//! Each constructor returns a validated [`Netlist`]; compile with
//! [`CompiledCircuit::compile`](ffr_sim::CompiledCircuit::compile).

use crate::components;
use ffr_netlist::{Netlist, NetlistBuilder};

/// An enabled wrap-around counter with a terminal-count flag.
///
/// Ports: input `en`; outputs `value[width]`, `tc` (all-ones detect).
pub fn counter_circuit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("counter");
    let en = b.input("en", 1);
    let c = components::counter(&mut b, "count", width, &en, None);
    let tc = b.reduce_and(&c.q());
    b.output("value", &c.q());
    b.output("tc", &tc);
    b.finish().expect("counter circuit is well formed")
}

/// An LFSR feeding a register pipeline with a parity check at the end.
///
/// Ports: input `en`; outputs `data[width]`, `parity`.
/// The pipeline stages give the design FFs at different sequential depths.
pub fn lfsr_pipeline(width: usize, depth: usize) -> Netlist {
    let mut b = NetlistBuilder::new("lfsr_pipeline");
    let en = b.input("en", 1);
    let src = components::lfsr(&mut b, "src", width, &en);
    let stages = components::shift_register(&mut b, "pipe", depth, &en, &src.q());
    let last = stages.last().expect("depth >= 1");
    let parity = b.reduce_xor(last);
    b.output("data", last);
    b.output("parity", &parity);
    b.finish().expect("lfsr pipeline is well formed")
}

/// A small registered ALU: two operand registers, an operation register
/// and a result register.
///
/// Ports: inputs `a[width]`, `bv[width]`, `op[2]`, `load`;
/// outputs `result[width]`, `zero`.
///
/// Operations: 0 = add, 1 = and, 2 = or, 3 = xor.
pub fn alu_circuit(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("alu");
    let a_in = b.input("a", width);
    let b_in = b.input("bv", width);
    let op_in = b.input("op", 2);
    let load = b.input("load", 1);

    let ra = b.reg("ra", width);
    b.connect_en(&ra, &load, &a_in).expect("ra");
    let rb = b.reg("rb", width);
    b.connect_en(&rb, &load, &b_in).expect("rb");
    let rop = b.reg("rop", 2);
    b.connect_en(&rop, &load, &op_in).expect("rop");

    let (sum, _) = b.add(&ra.q(), &rb.q());
    let and = b.and(&ra.q(), &rb.q());
    let or = b.or(&ra.q(), &rb.q());
    let xor = b.xor(&ra.q(), &rb.q());
    let result = b.select(&rop.q(), &[sum, and, or, xor]);

    let rres = b.reg("rres", width);
    b.connect(&rres, &result).expect("rres");
    let nz = b.reduce_or(&rres.q());
    let zero = b.not(&nz);
    b.output("result", &rres.q());
    b.output("zero", &zero);
    b.finish().expect("alu circuit is well formed")
}

/// A traffic-light controller: a three-state one-hot FSM with a phase
/// timer and a benign statistics counter.
///
/// Ports: input `tick`; outputs `green`, `yellow`, `red`,
/// `cycles_served[8]`.
///
/// The one-hot state bits are highly critical (an SEU can wedge the FSM),
/// while the statistics counter is functionally irrelevant — a microcosm of
/// the FDR populations the paper studies.
pub fn traffic_light() -> Netlist {
    let mut b = NetlistBuilder::new("traffic_light");
    let tick = b.input("tick", 1);

    // One-hot state: green (init), yellow, red.
    let green = b.reg_init("st_green", 1, 1);
    let yellow = b.reg("st_yellow", 1);
    let red = b.reg("st_red", 1);

    // Phase timer: green 8 ticks, yellow 2, red 6.
    let timer = b.reg("timer", 4);
    let t_is_zero = b.eq_const(&timer.q(), 0);
    let advance = b.and(&tick, &t_is_zero);
    let hold = b.not(&advance);

    // Next-state one-hot rotation when advancing.
    let g_next = b.mux(&advance, &green.q(), &red.q());
    let y_next = b.mux(&advance, &yellow.q(), &green.q());
    let r_next = b.mux(&advance, &red.q(), &yellow.q());
    b.connect(&green, &g_next).expect("green");
    b.connect(&yellow, &y_next).expect("yellow");
    b.connect(&red, &r_next).expect("red");

    // Timer reload per state.
    let reload_g = b.lit(4, 7);
    let reload_y = b.lit(4, 1);
    let reload_r = b.lit(4, 5);
    // Value when advancing: reload for the *next* state.
    let after_g = &reload_y; // green -> yellow
    let after_y = &reload_r; // yellow -> red
    let after_r = &reload_g; // red -> green
    let sel_gy = b.mux(&green.q(), after_y, after_g);
    let reload = b.mux(&red.q(), &sel_gy, after_r);
    let dec = b.add_const(&timer.q(), 0b1111); // minus one, mod 16
    let dec_or_hold = b.mux(&tick, &timer.q(), &dec);
    let t_next = b.mux(&hold, &reload, &dec_or_hold);
    b.connect(&timer, &t_next).expect("timer");

    // Benign statistics: count completed red->green transitions.
    let back_to_green = b.and(&advance, &red.q());
    let served = components::counter(&mut b, "cycles_served", 8, &back_to_green, None);

    b.output("green", &green.q());
    b.output("yellow", &yellow.q());
    b.output("red", &red.q());
    b.output("cycles_served", &served.q());
    b.finish().expect("traffic light is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_sim::{CompiledCircuit, SimState};

    fn out_bus(cc: &CompiledCircuit, s: &SimState, base: usize, width: usize) -> u64 {
        (0..width).fold(0, |acc, i| acc | ((s.output_word(cc, base + i) & 1) << i))
    }

    #[test]
    fn counter_circuit_counts_and_flags_tc() {
        let cc = CompiledCircuit::compile(counter_circuit(4)).unwrap();
        let mut s = SimState::new(&cc);
        let tc_idx = cc.netlist().output_index("tc").unwrap();
        let mut saw_tc = false;
        for _ in 0..16 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            saw_tc |= s.output_word(&cc, tc_idx) & 1 == 1;
            s.tick(&cc);
        }
        assert!(saw_tc, "terminal count must fire within one period");
    }

    #[test]
    fn lfsr_pipeline_parity_is_consistent() {
        let cc = CompiledCircuit::compile(lfsr_pipeline(8, 3)).unwrap();
        let mut s = SimState::new(&cc);
        let parity_idx = cc.netlist().output_index("parity").unwrap();
        for _ in 0..50 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            let data = out_bus(&cc, &s, 0, 8);
            let parity = s.output_word(&cc, parity_idx) & 1;
            assert_eq!(parity, (data.count_ones() as u64) & 1);
            s.tick(&cc);
        }
    }

    #[test]
    fn alu_operations() {
        let cc = CompiledCircuit::compile(alu_circuit(8)).unwrap();
        let mut s = SimState::new(&cc);
        let a = 0x5Au64;
        let bv = 0x0Fu64;
        for (op, expect) in [
            (0u64, (a + bv) & 0xFF),
            (1, a & bv),
            (2, a | bv),
            (3, a ^ bv),
        ] {
            // Load operands and op.
            for i in 0..8 {
                s.set_input(&cc, i, (a >> i) & 1 == 1);
                s.set_input(&cc, 8 + i, (bv >> i) & 1 == 1);
            }
            s.set_input(&cc, 16, op & 1 == 1);
            s.set_input(&cc, 17, (op >> 1) & 1 == 1);
            s.set_input(&cc, 18, true);
            s.eval(&cc);
            s.tick(&cc);
            // One more cycle for the result register.
            s.set_input(&cc, 18, false);
            s.eval(&cc);
            s.tick(&cc);
            s.eval(&cc);
            assert_eq!(out_bus(&cc, &s, 0, 8), expect, "op {op}");
        }
    }

    #[test]
    fn traffic_light_is_always_one_hot() {
        let cc = CompiledCircuit::compile(traffic_light()).unwrap();
        let mut s = SimState::new(&cc);
        let g = cc.netlist().output_index("green").unwrap();
        let y = cc.netlist().output_index("yellow").unwrap();
        let r = cc.netlist().output_index("red").unwrap();
        let mut seen_states = std::collections::HashSet::new();
        for cycle in 0..200u64 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            let lights = (
                s.output_word(&cc, g) & 1,
                s.output_word(&cc, y) & 1,
                s.output_word(&cc, r) & 1,
            );
            let sum = lights.0 + lights.1 + lights.2;
            assert_eq!(sum, 1, "one-hot violated at cycle {cycle}: {lights:?}");
            seen_states.insert(lights);
            s.tick(&cc);
        }
        assert_eq!(seen_states.len(), 3, "all three phases visited");
    }

    #[test]
    fn traffic_light_serves_cycles() {
        let cc = CompiledCircuit::compile(traffic_light()).unwrap();
        let mut s = SimState::new(&cc);
        let base = cc.netlist().output_index("cycles_served[0]").unwrap();
        for _ in 0..400 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            s.tick(&cc);
        }
        s.eval(&cc);
        let served = out_bus(&cc, &s, base, 8);
        // Full cycle is (8 + 2 + 6) ticks plus reload cycles; at least a
        // few cycles must have completed in 400 ticks.
        assert!(served >= 10, "served = {served}");
    }
}
