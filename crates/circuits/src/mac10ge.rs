//! A parameterized 10GE-MAC-like gate-level design.
//!
//! This is the workspace's substitute for the OpenCores 10GE MAC the paper
//! evaluates (§IV): a Media-Access-Controller-shaped circuit with
//!
//! * a **TX path**: packet write interface → synchronous TX FIFO → framing
//!   FSM (start word, payload, CRC-32, terminate word, inter-frame gap) →
//!   registered XGMII-style word interface (`data + ctl`),
//! * an **RX path**: registered XGMII input → frame parser with a
//!   CRC-delay pipe → CRC check → RX FIFO → packet read interface,
//! * an optional internal **loopback** (two pipeline stages standing in for
//!   the PHY), which is what the paper's testbench does externally,
//! * **control & status**: frame/octet/error counters, frame-length
//!   min/max tracking, a MAC address filter (disabled at reset), a pause
//!   timer and configuration registers.
//!
//! The default configuration elaborates to the paper's flip-flop count
//! (1054). The mixture of FF populations — FIFO payload bits whose
//! vulnerability tracks occupancy, one-hot/binary FSM state bits that can
//! wedge traffic, CRC state, and functionally inert status counters — is
//! exactly the heterogeneity the ML features are supposed to learn.

use ffr_netlist::{Bus, Netlist, NetlistBuilder, RegHandle};
use serde::{Deserialize, Serialize};

use crate::components::{counter, crc32_update};

/// Static parameters of [`Mac10ge`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mac10geConfig {
    /// XGMII word width in bits; must divide 32 and be a multiple of 8
    /// (16 or 32).
    pub data_width: usize,
    /// log2 of the FIFO depth (both TX and RX FIFOs).
    pub fifo_addr_bits: usize,
    /// Wire the XGMII TX interface back into RX through two pipeline
    /// registers (the paper's testbench loopback, moved inside the netlist
    /// so the stimulus stays open-loop).
    pub loopback: bool,
    /// Extra benign diagnostic shift-register bits, used to pin the total
    /// flip-flop count (the default lands on the paper's 1054).
    pub pad_ffs: usize,
}

impl Default for Mac10geConfig {
    fn default() -> Self {
        Mac10geConfig {
            data_width: 16,
            fifo_addr_bits: 4,
            loopback: true,
            pad_ffs: PAD_FFS_DEFAULT,
        }
    }
}

/// The unpadded default design happens to elaborate to exactly the
/// paper's 1054 FFs, so no padding is needed; the knob remains for
/// experiments that want to scale the benign population.
pub(crate) const PAD_FFS_DEFAULT: usize = 0;

impl Mac10geConfig {
    /// A reduced configuration (8-entry FIFOs, no padding) for fast tests.
    pub fn small() -> Mac10geConfig {
        Mac10geConfig {
            data_width: 16,
            fifo_addr_bits: 3,
            loopback: true,
            pad_ffs: 0,
        }
    }

    /// Number of CRC words per frame (`32 / data_width`).
    pub fn crc_words(&self) -> usize {
        32 / self.data_width
    }

    /// Idle control word (`0x07` in every byte lane).
    pub fn idle_word(&self) -> u64 {
        byte_repeat(0x07, self.data_width)
    }

    /// Start-of-frame control word (`0xFB` then preamble bytes `0x55`).
    pub fn start_word(&self) -> u64 {
        0xFB | (byte_repeat(0x55, self.data_width) & !0xFFu64)
    }

    /// End-of-frame control word (`0xFD` then idle bytes).
    pub fn term_word(&self) -> u64 {
        0xFD | (byte_repeat(0x07, self.data_width) & !0xFFu64)
    }

    /// First payload word that (if it started a frame) would load the
    /// pause timer. The testbench never generates it.
    pub fn pause_magic(&self) -> u64 {
        0x0808
    }

    fn validate(&self) {
        assert!(
            self.data_width == 16 || self.data_width == 32,
            "data_width must be 16 or 32"
        );
        assert!(
            (2..=8).contains(&self.fifo_addr_bits),
            "fifo_addr_bits out of range"
        );
    }
}

fn byte_repeat(byte: u8, width: usize) -> u64 {
    let mut w = 0u64;
    for i in 0..(width / 8) {
        w |= (byte as u64) << (8 * i);
    }
    w
}

/// The elaborated MAC: its gate-level netlist plus the configuration it
/// was built from.
#[derive(Clone, Debug)]
pub struct Mac10ge {
    netlist: Netlist,
    config: Mac10geConfig,
}

// TX FSM state encoding (3 bits). CRC states are consecutive from CRC0.
const ST_IDLE: u64 = 0;
const ST_START: u64 = 1;
const ST_DATA: u64 = 2;
const ST_CRC0: u64 = 3;
// ST_TERM = 3 + crc_words, ST_IFG = 4 + crc_words.

impl Mac10ge {
    /// Elaborate the MAC for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`Mac10geConfig`]).
    pub fn build(config: Mac10geConfig) -> Mac10ge {
        config.validate();
        let netlist = elaborate(&config);
        Mac10ge { netlist, config }
    }

    /// The elaborated gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the wrapper and return the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The configuration the MAC was elaborated with.
    pub fn config(&self) -> &Mac10geConfig {
        &self.config
    }
}

#[allow(clippy::too_many_lines)] // the module is one structural elaboration
fn elaborate(cfg: &Mac10geConfig) -> Netlist {
    let w = cfg.data_width;
    let crc_words = cfg.crc_words();
    let st_term = ST_CRC0 + crc_words as u64;
    let st_ifg = st_term + 1;

    let mut b = NetlistBuilder::new("mac10ge");

    // ------------------------------------------------------------------
    // Ports
    // ------------------------------------------------------------------
    let rst = b.input("rst", 1);
    let tx_valid = b.input("tx_valid", 1);
    let tx_sop = b.input("tx_sop", 1);
    let tx_eop = b.input("tx_eop", 1);
    let tx_data = b.input("tx_data", w);
    let rx_ready = b.input("rx_ready", 1);
    let ext_rx = if cfg.loopback {
        None
    } else {
        let d = b.input("xgmii_rxd", w);
        let c = b.input("xgmii_rxc", 1);
        Some((d, c))
    };

    // ------------------------------------------------------------------
    // TX FIFO: [data | sop | eop]
    // ------------------------------------------------------------------
    let tx_entry = tx_data.concat(&tx_sop).concat(&tx_eop);
    // rd_en is driven by the TX FSM below; use a two-phase wire: we build
    // the FSM first as registers, then the FIFO, feeding FSM outputs in.
    // To avoid a forward reference we declare the state register here.
    let state = b.reg("tx_state", 3);
    let in_idle = b.eq_const(&state.q(), ST_IDLE);
    let in_start = b.eq_const(&state.q(), ST_START);
    let in_data = b.eq_const(&state.q(), ST_DATA);
    let in_term = b.eq_const(&state.q(), st_term);

    // The TX FIFO's read-enable depends on its own head flags (garbage
    // drop in IDLE, payload pop in DATA), so the pointer is attached after
    // construction via the late-rd variant.
    let tx_fifo =
        sync_fifo_with_late_rd(&mut b, "tx_fifo", cfg.fifo_addr_bits, &tx_valid, &tx_entry);
    let head_data = tx_fifo.rd_data.slice(0..w);
    let head_sop = tx_fifo.rd_data.bit(w);
    let head_eop = tx_fifo.rd_data.bit(w + 1);
    let tx_not_empty = b.not(&tx_fifo.empty);
    let n_head_sop = b.not(&head_sop);
    let idle_garbage = b.and(&in_idle, &tx_not_empty);
    let idle_garbage = b.and(&idle_garbage, &n_head_sop);
    let data_pop = b.and(&in_data, &tx_not_empty);
    let tx_rd_en = b.or(&idle_garbage, &data_pop);
    tx_fifo.connect_rd_en(&mut b, &tx_rd_en);

    let tx_ready = b.not(&tx_fifo.full);

    // Pause timer: loaded from the first word of a received pause frame
    // (never triggered by the testbench), counts down, stalls TX starts.
    let pause_timer = b.reg("pause_timer", 16);
    let pause_nz = b.reduce_or(&pause_timer.q());

    // TX FSM transitions.
    let can_start = b.and(&tx_not_empty, &head_sop);
    let n_pause = b.not(&pause_nz);
    let can_start = b.and(&can_start, &n_pause);
    let st_idle_c = b.lit(3, ST_IDLE);
    let st_start_c = b.lit(3, ST_START);
    let st_data_c = b.lit(3, ST_DATA);
    let st_term_c = b.lit(3, st_term);
    let st_ifg_c = b.lit(3, st_ifg);

    // IFG countdown, loaded from the cfg_ifg register at TERM.
    let cfg_ifg = hold_reg(&mut b, "cfg_ifg", 4, 3);
    let ifg_cnt = b.reg("ifg_cnt", 4);
    let ifg_zero = b.eq_const(&ifg_cnt.q(), 0);
    let ifg_dec = b.add_const(&ifg_cnt.q(), 0b1111);
    let ifg_next_run = b.mux(&ifg_zero, &ifg_dec, &ifg_cnt.q());
    let ifg_next = b.mux(&in_term, &ifg_next_run, &cfg_ifg.q());
    b.connect(&ifg_cnt, &ifg_next).expect("ifg_cnt");

    let mut next_by_state: Vec<Bus> = Vec::with_capacity(8);
    // IDLE
    let idle_next = b.mux(&can_start, &st_idle_c, &st_start_c);
    next_by_state.push(idle_next);
    // START
    next_by_state.push(st_data_c.clone());
    // DATA
    let eop_pop = b.and(&data_pop, &head_eop);
    let crc0_c = b.lit(3, ST_CRC0);
    let data_next = b.mux(&eop_pop, &st_data_c, &crc0_c);
    next_by_state.push(data_next);
    // CRC words
    for j in 0..crc_words {
        let after = if j + 1 < crc_words {
            b.lit(3, ST_CRC0 + j as u64 + 1)
        } else {
            st_term_c.clone()
        };
        next_by_state.push(after);
    }
    // TERM
    next_by_state.push(st_ifg_c.clone());
    // IFG
    let ifg_next_state = b.mux(&ifg_zero, &st_ifg_c, &st_idle_c);
    next_by_state.push(ifg_next_state);
    while next_by_state.len() < 8 {
        next_by_state.push(st_idle_c.clone()); // unreachable encodings recover
    }
    let state_next = b.select(&state.q(), &next_by_state);
    b.connect_en_rst(&state, None, Some((&rst, ST_IDLE)), &state_next)
        .expect("tx_state");

    // TX CRC.
    let tx_crc = b.reg("tx_crc", 32);
    let tx_crc_upd = crc32_update(&mut b, &tx_crc.q(), &head_data);
    let crc_init = b.lit(32, 0xFFFF_FFFF);
    let crc_after_pop = b.mux(&data_pop, &tx_crc.q(), &tx_crc_upd);
    let tx_crc_next = b.mux(&in_start, &crc_after_pop, &crc_init);
    b.connect(&tx_crc, &tx_crc_next).expect("tx_crc");

    // XGMII TX word selection, registered.
    let idle_c = b.lit(w, cfg.idle_word());
    let start_c = b.lit(w, cfg.start_word());
    let term_c = b.lit(w, cfg.term_word());
    let mut txd_options: Vec<Bus> = Vec::with_capacity(8);
    let mut txc_options: Vec<Bus> = Vec::with_capacity(8);
    let one = b.one_bit();
    let zero = b.zero_bit();
    // IDLE
    txd_options.push(idle_c.clone());
    txc_options.push(one.clone());
    // START
    txd_options.push(start_c.clone());
    txc_options.push(one.clone());
    // DATA: payload when popping, idle (underrun) otherwise.
    let data_or_idle = b.mux(&data_pop, &idle_c, &head_data);
    let ctl_data = b.not(&data_pop);
    txd_options.push(data_or_idle);
    txc_options.push(ctl_data);
    // CRC words
    for j in 0..crc_words {
        txd_options.push(tx_crc.q().slice(j * w..(j + 1) * w));
        txc_options.push(zero.clone());
    }
    // TERM
    txd_options.push(term_c.clone());
    txc_options.push(one.clone());
    // IFG
    txd_options.push(idle_c.clone());
    txc_options.push(one.clone());
    while txd_options.len() < 8 {
        txd_options.push(idle_c.clone());
        txc_options.push(one.clone());
    }
    let txd_sel = b.select(&state.q(), &txd_options);
    let txc_sel = b.select(&state.q(), &txc_options);
    let txd_r = b.reg("xgmii_txd_r", w);
    b.connect(&txd_r, &txd_sel).expect("txd_r");
    let txc_r = b.reg_init("xgmii_txc_r", 1, 1);
    b.connect(&txc_r, &txc_sel).expect("txc_r");

    // ------------------------------------------------------------------
    // Loopback / external RX source, registered input stage.
    // ------------------------------------------------------------------
    let (rx_src_d, rx_src_c) = if let Some((d, c)) = ext_rx {
        (d, c)
    } else {
        let lb1d = b.reg("lb1_d", w);
        b.connect(&lb1d, &txd_r.q()).expect("lb1d");
        let lb1c = b.reg_init("lb1_c", 1, 1);
        b.connect(&lb1c, &txc_r.q()).expect("lb1c");
        let lb2d = b.reg("lb2_d", w);
        b.connect(&lb2d, &lb1d.q()).expect("lb2d");
        let lb2c = b.reg_init("lb2_c", 1, 1);
        b.connect(&lb2c, &lb1c.q()).expect("lb2c");
        (lb2d.q(), lb2c.q())
    };
    let rxd_r = b.reg("rxd_r", w);
    b.connect(&rxd_r, &rx_src_d).expect("rxd_r");
    let rxc_r = b.reg_init("rxc_r", 1, 1);
    b.connect(&rxc_r, &rx_src_c).expect("rxc_r");

    // ------------------------------------------------------------------
    // RX frame parser
    // ------------------------------------------------------------------
    let start_det_w = b.eq_const(&rxd_r.q(), cfg.start_word());
    let start_det = b.and(&rxc_r.q(), &start_det_w);
    let term_det_w = b.eq_const(&rxd_r.q(), cfg.term_word());
    let term_det = b.and(&rxc_r.q(), &term_det_w);
    let data_word = b.not(&rxc_r.q());

    let rx_active = b.reg("rx_active", 1);
    let end_seen = b.and(&rx_active.q(), &term_det);
    let n_end = b.not(&end_seen);
    let active_keep = b.and(&rx_active.q(), &n_end);
    let active_next = b.or(&start_det, &active_keep);
    b.connect_en_rst(&rx_active, None, Some((&rst, 0)), &active_next)
        .expect("rx_active");

    let shift_en = b.and(&rx_active.q(), &data_word);

    // CRC-delay pipe of depth crc_words (+ valid bits).
    let mut pipe_regs: Vec<RegHandle> = Vec::with_capacity(crc_words);
    let mut pipe_valid: Vec<RegHandle> = Vec::with_capacity(crc_words);
    let mut prev_d = rxd_r.q();
    let mut prev_v = one.clone();
    for j in 0..crc_words {
        let pr = b.reg(&format!("rx_pipe{j}"), w);
        b.connect_en(&pr, &shift_en, &prev_d).expect("rx_pipe");
        let pv = b.reg(&format!("rx_pipe{j}_v"), 1);
        b.connect_en_rst(&pv, Some(&shift_en), Some((&start_det, 0)), &prev_v)
            .expect("rx_pipe_v");
        prev_d = pr.q();
        prev_v = pv.q();
        pipe_regs.push(pr);
        pipe_valid.push(pv);
    }
    let exit_data = pipe_regs.last().expect("crc_words >= 1").q();
    let exit_valid = pipe_valid.last().expect("crc_words >= 1").q();
    let payload_shift = b.and(&shift_en, &exit_valid);

    // Address filter: compares the first payload word of a frame against
    // the low word of the configured MAC address; disabled at reset.
    let mac_addr = hold_reg(&mut b, "cfg_mac_addr", 48, 0x0011_2233_4455);
    let filter_en = hold_reg(&mut b, "cfg_filter_en", 1, 0);
    let started = b.reg("rx_started", 1);
    let addr_word = mac_addr.q().slice(0..w);
    let addr_match = b.eq(&exit_data, &addr_word);
    let addr_mismatch = b.not(&addr_match);
    let n_started = b.not(&started.q());
    let first_payload = b.and(&payload_shift, &n_started);
    let drop_now = b.and(&first_payload, &filter_en.q());
    let drop_now = b.and(&drop_now, &addr_mismatch);
    let dropping = b.reg("rx_dropping", 1);
    let drop_keep = b.or(&dropping.q(), &drop_now);
    let drop_next = b.mux(&start_det, &drop_keep, &zero);
    b.connect_en_rst(&dropping, None, Some((&rst, 0)), &drop_next)
        .expect("rx_dropping");
    let n_drop_now = b.not(&drop_now);
    let n_dropping = b.not(&dropping.q());
    let pass = b.and(&n_drop_now, &n_dropping);

    let started_set = b.or(&started.q(), &payload_shift);
    let started_next = b.mux(&start_det, &started_set, &zero);
    b.connect_en_rst(&started, None, Some((&rst, 0)), &started_next)
        .expect("rx_started");

    // First payload word capture (pause-frame detection).
    let first_word = b.reg("rx_first_word", w);
    b.connect_en(&first_word, &first_payload, &exit_data)
        .expect("rx_first_word");

    // RX CRC over payload words.
    let rx_crc = b.reg("rx_crc", 32);
    let rx_crc_upd = crc32_update(&mut b, &rx_crc.q(), &exit_data);
    let rx_crc_run = b.mux(&payload_shift, &rx_crc.q(), &rx_crc_upd);
    let rx_crc_next = b.mux(&start_det, &rx_crc_run, &crc_init);
    b.connect(&rx_crc, &rx_crc_next).expect("rx_crc");

    // CRC check at TERM: computed CRC vs the FCS words still in the pipe.
    let mut crc_ok = one.clone();
    for j in 0..crc_words {
        let expect = rx_crc.q().slice(j * w..(j + 1) * w);
        let got = pipe_regs[crc_words - 1 - j].q();
        let eq = b.eq(&expect, &got);
        crc_ok = b.and(&crc_ok, &eq);
        let v = pipe_valid[crc_words - 1 - j].q();
        crc_ok = b.and(&crc_ok, &v);
    }
    let crc_bad = b.not(&crc_ok);

    // Frame length accounting.
    let rx_len = b.reg("rx_len", 12);
    let rx_len_inc = b.inc(&rx_len.q());
    let rx_len_run = b.mux(&payload_shift, &rx_len.q(), &rx_len_inc);
    let zero12 = b.lit(12, 0);
    let rx_len_next = b.mux(&start_det, &rx_len_run, &zero12);
    b.connect(&rx_len, &rx_len_next).expect("rx_len");

    let eop_good = b.and(&end_seen, &crc_ok);
    let eop_bad = b.and(&end_seen, &crc_bad);

    let last_len = b.reg("rx_last_len", 12);
    b.connect_en(&last_len, &eop_good, &rx_len.q())
        .expect("rx_last_len");
    let min_len = b.reg_init("rx_min_len", 12, 0xFFF);
    let len_lt_min = b.lt(&rx_len.q(), &min_len.q());
    let upd_min = b.and(&eop_good, &len_lt_min);
    b.connect_en(&min_len, &upd_min, &rx_len.q())
        .expect("rx_min_len");
    let max_len = b.reg("rx_max_len", 12);
    let max_lt_len = b.lt(&max_len.q(), &rx_len.q());
    let upd_max = b.and(&eop_good, &max_lt_len);
    b.connect_en(&max_len, &upd_max, &rx_len.q())
        .expect("rx_max_len");

    // Pause handling: a good frame whose first word is the pause magic
    // loads the timer with that word (never happens in the testbench).
    let pause_frame = b.eq_const(&first_word.q(), cfg.pause_magic());
    let pause_load = b.and(&eop_good, &pause_frame);
    let pause_dec = b.add_const(&pause_timer.q(), 0xFFFF);
    let pause_run = b.mux(&pause_nz, &pause_timer.q(), &pause_dec);
    let fw_ext = b.zext(&first_word.q().slice(0..w.min(16)), 16);
    let pause_next = b.mux(&pause_load, &pause_run, &fw_ext);
    b.connect_en_rst(&pause_timer, None, Some((&rst, 0)), &pause_next)
        .expect("pause_timer");

    // ------------------------------------------------------------------
    // RX FIFO: [data | sop | eop | err]
    // ------------------------------------------------------------------
    let wr_payload = b.and(&payload_shift, &pass);
    let rx_wr_en = b.or(&wr_payload, &end_seen);
    let sop_flag = b.and(&n_started, &one);
    let payload_entry = exit_data
        .concat(&sop_flag)
        .concat(&zero) // eop
        .concat(&zero); // err
    let zero_w = b.lit(w, 0);
    let eop_entry = zero_w.concat(&n_started).concat(&one).concat(&crc_bad);
    let rx_entry = b.mux(&end_seen, &payload_entry, &eop_entry);
    let rx_fifo =
        sync_fifo_with_late_rd(&mut b, "rx_fifo", cfg.fifo_addr_bits, &rx_wr_en, &rx_entry);
    let rx_not_empty = b.not(&rx_fifo.empty);
    let rx_rd_en = b.and(&rx_ready, &rx_not_empty);
    rx_fifo.connect_rd_en(&mut b, &rx_rd_en);

    let rx_valid = b.and(&rx_not_empty, &rx_ready);
    let rx_head = rx_fifo.rd_data.clone();

    // ------------------------------------------------------------------
    // Status counters (functionally inert)
    // ------------------------------------------------------------------
    let tx_frames = counter(&mut b, "tx_frames", 8, &in_term, Some(&rst));
    let rx_frames = counter(&mut b, "rx_frames", 8, &eop_good, Some(&rst));
    let crc_errs = counter(&mut b, "crc_errs", 8, &eop_bad, Some(&rst));
    let tx_octets = b.reg("tx_octets", 32);
    let tx_oct_next = b.add_const(&tx_octets.q(), (w / 8) as u64);
    b.connect_en(&tx_octets, &data_pop, &tx_oct_next)
        .expect("tx_octets");
    let rx_octets = b.reg("rx_octets", 32);
    let rx_oct_next = b.add_const(&rx_octets.q(), (w / 8) as u64);
    b.connect_en(&rx_octets, &wr_payload, &rx_oct_next)
        .expect("rx_octets");
    let uptime = counter(&mut b, "uptime", 24, &one, None);

    // Idle watchdog: counts cycles since the last delivered RX word.
    let watchdog = b.reg("rx_watchdog", 21);
    let wd_inc = b.inc(&watchdog.q());
    let zero21 = b.lit(21, 0);
    let wd_next = b.mux(&rx_valid, &wd_inc, &zero21);
    b.connect(&watchdog, &wd_next).expect("rx_watchdog");

    // Diagnostic padding shift register (benign by construction).
    if cfg.pad_ffs > 0 {
        let mut prev = uptime.q().bit(0);
        for j in 0..cfg.pad_ffs {
            let r = b.reg(&format!("diag_sr{j}"), 1);
            b.connect(&r, &prev).expect("diag_sr");
            prev = r.q();
        }
        b.output("diag_tap", &prev);
    }

    // ------------------------------------------------------------------
    // Outputs
    // ------------------------------------------------------------------
    b.output("tx_ready", &tx_ready);
    b.output("rx_valid", &rx_valid);
    b.output("rx_data", &rx_head.slice(0..w));
    b.output("rx_sop", &rx_head.bit(w));
    b.output("rx_eop", &rx_head.bit(w + 1));
    b.output("rx_err", &rx_head.bit(w + 2));
    b.output("xgmii_txd", &txd_r.q());
    b.output("xgmii_txc", &txc_r.q());
    b.output("tx_frames", &tx_frames.q());
    b.output("rx_frames", &rx_frames.q());
    b.output("crc_errs", &crc_errs.q());
    b.output("tx_octets", &tx_octets.q());
    b.output("rx_octets", &rx_octets.q());
    b.output("uptime", &uptime.q());
    b.output("rx_last_len", &last_len.q());
    b.output("rx_min_len", &min_len.q());
    b.output("rx_max_len", &max_len.q());
    b.output("rx_watchdog_top", &watchdog.q().bit(20));

    b.finish().expect("mac10ge elaboration is well formed")
}

/// A configuration register: holds its init value (d = q) so only an SEU
/// can ever change it.
fn hold_reg(b: &mut NetlistBuilder, name: &str, width: usize, init: u64) -> RegHandle {
    let r = b.reg_init(name, width, init);
    let q = r.q();
    b.connect(&r, &q).expect("hold reg connected once");
    r
}

/// A `sync_fifo` variant whose read-enable is attached after construction,
/// so the enable may depend on the FIFO's own outputs (head flags, empty).
struct LateRdFifo {
    rd_data: Bus,
    empty: Bus,
    full: Bus,
    rptr: RegHandle,
}

fn sync_fifo_with_late_rd(
    b: &mut NetlistBuilder,
    name: &str,
    addr_bits: usize,
    wr_en: &Bus,
    wr_data: &Bus,
) -> LateRdFifo {
    let depth = 1usize << addr_bits;
    let width = wr_data.width();
    let wptr = b.reg(&format!("{name}_wptr"), addr_bits + 1);
    let rptr = b.reg(&format!("{name}_rptr"), addr_bits + 1);

    let empty = b.eq(&wptr.q(), &rptr.q());
    let msb_neq = b.xor(&wptr.q().msb(), &rptr.q().msb());
    let low_eq = b.eq(&wptr.q().slice(0..addr_bits), &rptr.q().slice(0..addr_bits));
    let full = b.and(&msb_neq, &low_eq);

    let not_full = b.not(&full);
    let do_wr = b.and(wr_en, &not_full);
    let wptr_next = b.inc(&wptr.q());
    b.connect_en(&wptr, &do_wr, &wptr_next).expect("wptr");

    let wsel = b.decode(&wptr.q().slice(0..addr_bits));
    let mut rows: Vec<Bus> = Vec::with_capacity(depth);
    for i in 0..depth {
        let row = b.reg(&format!("{name}_mem{i}"), width);
        let en = b.and(&do_wr, &wsel.bit(i));
        b.connect_en(&row, &en, wr_data).expect("fifo row");
        rows.push(row.q());
    }
    let rd_data = b.select(&rptr.q().slice(0..addr_bits), &rows);

    LateRdFifo {
        rd_data,
        empty,
        full,
        rptr,
    }
}

impl LateRdFifo {
    /// Attach the read-enable. An extra `!empty` gate keeps pointer
    /// underflow impossible regardless of the caller's gating.
    fn connect_rd_en(&self, b: &mut NetlistBuilder, rd_en: &Bus) {
        let n_empty = b.not(&self.empty);
        let do_rd = b.and(rd_en, &n_empty);
        let next = b.inc(&self.rptr.q());
        b.connect_en(&self.rptr, &do_rd, &next)
            .expect("fifo rptr connected once");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistStats;

    #[test]
    fn default_config_hits_paper_ff_count() {
        let mac = Mac10ge::build(Mac10geConfig::default());
        let stats = NetlistStats::of(mac.netlist());
        assert_eq!(
            stats.flip_flops, 1054,
            "default Mac10ge should elaborate to the paper's 1054 FFs; got {}",
            stats.flip_flops
        );
    }

    #[test]
    fn small_config_is_smaller() {
        let mac = Mac10ge::build(Mac10geConfig::small());
        let n = mac.netlist().num_ffs();
        assert!(n < 800, "small config should be compact, got {n}");
        assert!(mac.netlist().validate().is_ok());
    }

    #[test]
    fn protocol_words_are_distinct() {
        let cfg = Mac10geConfig::default();
        let words = [cfg.idle_word(), cfg.start_word(), cfg.term_word()];
        assert_ne!(words[0], words[1]);
        assert_ne!(words[0], words[2]);
        assert_ne!(words[1], words[2]);
        assert_eq!(cfg.crc_words(), 2);
    }

    #[test]
    #[should_panic(expected = "data_width")]
    fn rejects_bad_width() {
        let _ = Mac10ge::build(Mac10geConfig {
            data_width: 24,
            ..Mac10geConfig::default()
        });
    }

    #[test]
    fn netlist_compiles_for_simulation() {
        let mac = Mac10ge::build(Mac10geConfig::small());
        let cc = ffr_sim::CompiledCircuit::compile(mac.into_netlist());
        assert!(cc.is_ok(), "{:?}", cc.err());
    }
}
