//! Reusable RTL building blocks.
//!
//! Every component lowers to the NanGate-like standard-cell vocabulary via
//! [`NetlistBuilder`]; they are the "IP blocks" from which [`Mac10ge`](crate::Mac10ge)
//! (and the [`small`](crate::small) demo circuits) are assembled.

use ffr_netlist::{Bus, NetlistBuilder, RegHandle};

/// Ports of a [`sync_fifo`].
#[derive(Debug, Clone)]
pub struct FifoPorts {
    /// Head-of-queue data (valid whenever `empty` is low; show-ahead).
    pub rd_data: Bus,
    /// High when the FIFO holds no entries.
    pub empty: Bus,
    /// High when the FIFO cannot accept a write.
    pub full: Bus,
    /// Current occupancy (`addr_bits + 1` wide).
    pub level: Bus,
}

/// Synchronous show-ahead FIFO with `2^addr_bits` entries.
///
/// Writes when `wr_en & !full`, pops when `rd_en & !empty`; simultaneous
/// read/write is supported. The storage is a register file of
/// `2^addr_bits × width` flip-flops — exactly the FF population that gives
/// the paper's datapath its occupancy-dependent vulnerability.
pub fn sync_fifo(
    b: &mut NetlistBuilder,
    name: &str,
    addr_bits: usize,
    wr_en: &Bus,
    wr_data: &Bus,
    rd_en: &Bus,
) -> FifoPorts {
    assert!(addr_bits >= 1, "FIFO needs at least 2 entries");
    let depth = 1usize << addr_bits;
    let width = wr_data.width();

    let wptr = b.reg(&format!("{name}_wptr"), addr_bits + 1);
    let rptr = b.reg(&format!("{name}_rptr"), addr_bits + 1);

    let empty = b.eq(&wptr.q(), &rptr.q());
    let msb_neq = b.xor(&wptr.q().msb(), &rptr.q().msb());
    let low_eq = b.eq(&wptr.q().slice(0..addr_bits), &rptr.q().slice(0..addr_bits));
    let full = b.and(&msb_neq, &low_eq);

    let not_full = b.not(&full);
    let not_empty = b.not(&empty);
    let do_wr = b.and(wr_en, &not_full);
    let do_rd = b.and(rd_en, &not_empty);

    let wptr_next = b.inc(&wptr.q());
    b.connect_en(&wptr, &do_wr, &wptr_next)
        .expect("fifo wptr connected once");
    let rptr_next = b.inc(&rptr.q());
    b.connect_en(&rptr, &do_rd, &rptr_next)
        .expect("fifo rptr connected once");

    // Storage rows with one-hot write select.
    let wsel = b.decode(&wptr.q().slice(0..addr_bits));
    let mut rows: Vec<Bus> = Vec::with_capacity(depth);
    for i in 0..depth {
        let row = b.reg(&format!("{name}_mem{i}"), width);
        let en = b.and(&do_wr, &wsel.bit(i));
        b.connect_en(&row, &en, wr_data)
            .expect("fifo row connected once");
        rows.push(row.q());
    }
    let rd_data = b.select(&rptr.q().slice(0..addr_bits), &rows);

    let (level, _) = b.sub(&wptr.q(), &rptr.q());

    FifoPorts {
        rd_data,
        empty,
        full,
        level,
    }
}

/// The CRC-32 polynomial used by IEEE 802.3 (`x^32 + x^26 + … + 1`),
/// MSB-first representation.
pub const CRC32_POLY: u32 = 0x04C1_1DB7;

/// Software model of [`crc32_update`]: fold `width` bits of `data`
/// (MSB first) into a running CRC-32.
///
/// Both the TX and RX engines of [`Mac10ge`](crate::Mac10ge) use the same
/// convention, so the usual IEEE reflection/complement details are not
/// modelled — they cancel out for matched generate/check pairs.
pub fn crc32_update_sw(mut crc: u32, data: u64, width: usize) -> u32 {
    assert!(width <= 64);
    for i in (0..width).rev() {
        let bit = ((data >> i) & 1) as u32;
        let feedback = (crc >> 31) ^ bit;
        crc <<= 1;
        if feedback & 1 == 1 {
            crc ^= CRC32_POLY;
        }
    }
    crc
}

/// Combinational CRC-32 update: folds the `data` bus (MSB first) into
/// `crc` and returns the new CRC bus.
///
/// # Panics
///
/// Panics if `crc` is not 32 bits wide.
pub fn crc32_update(b: &mut NetlistBuilder, crc: &Bus, data: &Bus) -> Bus {
    assert_eq!(crc.width(), 32, "CRC register must be 32 bits");
    let mut state: Vec<ffr_netlist::NetId> = crc.nets().to_vec();
    for i in (0..data.width()).rev() {
        let feedback = b.xor(&Bus::single(state[31]), &data.bit(i));
        let fb = feedback.net(0);
        let mut next = Vec::with_capacity(32);
        for (j, poly_tap) in poly_taps().iter().enumerate() {
            if j == 0 {
                // poly bit 0 is always 1.
                next.push(fb);
            } else if *poly_tap {
                let x = b.xor(&Bus::single(state[j - 1]), &Bus::single(fb));
                next.push(x.net(0));
            } else {
                next.push(state[j - 1]);
            }
        }
        state = next;
    }
    Bus::from_nets(state)
}

fn poly_taps() -> [bool; 32] {
    let mut taps = [false; 32];
    for (j, tap) in taps.iter_mut().enumerate() {
        *tap = (CRC32_POLY >> j) & 1 == 1;
    }
    taps
}

/// Free-running or enabled up-counter with synchronous reset.
///
/// Returns the register handle; the counter wraps at `2^width`.
pub fn counter(
    b: &mut NetlistBuilder,
    name: &str,
    width: usize,
    en: &Bus,
    rst: Option<&Bus>,
) -> RegHandle {
    let r = b.reg(name, width);
    let next = b.inc(&r.q());
    b.connect_en_rst(&r, Some(en), rst.map(|r| (r, 0)), &next)
        .expect("counter connected once");
    r
}

/// Maximal-length tap positions (1-based, à la LFSR literature) for the
/// widths supported by [`lfsr`].
fn lfsr_taps(width: usize) -> &'static [usize] {
    match width {
        4 => &[4, 3],
        8 => &[8, 6, 5, 4],
        16 => &[16, 15, 13, 4],
        24 => &[24, 23, 22, 17],
        32 => &[32, 22, 2, 1],
        _ => panic!("no LFSR tap table for width {width}"),
    }
}

/// Fibonacci LFSR with maximal-length taps, seeded to 1, shifting when
/// `en` is high. Used as a pseudo-random data source inside circuits.
///
/// # Panics
///
/// Panics if `width` has no tap table (supported: 4, 8, 16, 24, 32).
pub fn lfsr(b: &mut NetlistBuilder, name: &str, width: usize, en: &Bus) -> RegHandle {
    let r = b.reg_init(name, width, 1);
    let taps = lfsr_taps(width);
    let mut fb = r.q().bit(taps[0] - 1);
    for &t in &taps[1..] {
        fb = b.xor(&fb, &r.q().bit(t - 1));
    }
    // Shift left: new bit 0 = feedback.
    let shifted = fb.concat(&r.q().slice(0..width - 1));
    b.connect_en(&r, en, &shifted).expect("lfsr connected once");
    r
}

/// `depth`-stage shift register (pipeline) over a `width`-bit bus; returns
/// the output of every stage, index 0 being the first register after the
/// input.
pub fn shift_register(
    b: &mut NetlistBuilder,
    name: &str,
    depth: usize,
    en: &Bus,
    data_in: &Bus,
) -> Vec<Bus> {
    assert!(depth >= 1);
    let mut stages = Vec::with_capacity(depth);
    let mut current = data_in.clone();
    for i in 0..depth {
        let r = b.reg(&format!("{name}_s{i}"), data_in.width());
        b.connect_en(&r, en, &current)
            .expect("shift stage connected once");
        current = r.q();
        stages.push(current.clone());
    }
    stages
}

/// Rising-edge detector: output pulses for one cycle when `sig` goes
/// 0 → 1.
pub fn rising_edge(b: &mut NetlistBuilder, name: &str, sig: &Bus) -> Bus {
    assert_eq!(sig.width(), 1);
    let r = b.reg(name, 1);
    b.connect(&r, sig).expect("edge reg connected once");
    let n = b.not(&r.q());
    b.and(sig, &n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_netlist::NetlistBuilder;
    use ffr_sim::{CompiledCircuit, SimState};

    /// Drive a compiled circuit one cycle with the given input bit values.
    fn step(cc: &CompiledCircuit, s: &mut SimState, inputs: &[(usize, bool)]) {
        for &(i, v) in inputs {
            s.set_input(cc, i, v);
        }
        s.eval(cc);
        s.tick(cc);
    }

    fn out_bus(cc: &CompiledCircuit, s: &SimState, base: usize, width: usize) -> u64 {
        (0..width).fold(0, |acc, i| acc | ((s.output_word(cc, base + i) & 1) << i))
    }

    #[test]
    fn crc32_matches_software_model() {
        let mut b = NetlistBuilder::new("crc");
        let data = b.input("data", 16);
        let crc_in = b.input("crc_in", 32);
        let out = crc32_update(&mut b, &crc_in, &data);
        b.output("crc_out", &out);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);

        for (crc0, word) in [
            (0xFFFF_FFFFu32, 0x0000u64),
            (0xFFFF_FFFF, 0xFFFF),
            (0x0000_0000, 0xA5C3),
            (0x1234_5678, 0x9ABC),
            (0xDEAD_BEEF, 0x0001),
        ] {
            for i in 0..16 {
                s.set_input(&cc, i, (word >> i) & 1 == 1);
            }
            for i in 0..32 {
                s.set_input(&cc, 16 + i, (crc0 >> i) & 1 == 1);
            }
            s.eval(&cc);
            let got = out_bus(&cc, &s, 0, 32) as u32;
            assert_eq!(
                got,
                crc32_update_sw(crc0, word, 16),
                "crc({crc0:#x},{word:#x})"
            );
        }
    }

    #[test]
    fn fifo_behaves_like_model() {
        let mut b = NetlistBuilder::new("fifo");
        let wr_en = b.input("wr_en", 1);
        let wr_data = b.input("wr_data", 8);
        let rd_en = b.input("rd_en", 1);
        let ports = sync_fifo(&mut b, "f", 2, &wr_en, &wr_data, &rd_en);
        b.output("rd_data", &ports.rd_data);
        b.output("empty", &ports.empty);
        b.output("full", &ports.full);
        b.output("level", &ports.level);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);

        let o_data = 0usize;
        let o_empty = 8usize;
        let o_full = 9usize;
        let o_level = 10usize;

        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut lcg = 0x1234_5678u64;
        for step_no in 0..200 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let wr = (lcg >> 33) & 1 == 1;
            let rd = (lcg >> 34) & 1 == 1;
            let data = (lcg >> 40) & 0xFF;

            s.set_input(&cc, 0, wr);
            for i in 0..8 {
                s.set_input(&cc, 1 + i, (data >> i) & 1 == 1);
            }
            s.set_input(&cc, 9, rd);
            s.eval(&cc);

            // Check combinational status against the model (pre-edge).
            let empty = s.output_word(&cc, o_empty) & 1 == 1;
            let full = s.output_word(&cc, o_full) & 1 == 1;
            let level = out_bus(&cc, &s, o_level, 3);
            assert_eq!(empty, model.is_empty(), "step {step_no} empty");
            assert_eq!(full, model.len() == 4, "step {step_no} full");
            assert_eq!(level as usize, model.len(), "step {step_no} level");
            if !model.is_empty() {
                let head = out_bus(&cc, &s, o_data, 8);
                assert_eq!(head, model[0], "step {step_no} head");
            }

            // Apply the edge to the model in the same priority order.
            let did_wr = wr && model.len() < 4;
            let did_rd = rd && !model.is_empty();
            if did_rd {
                model.pop_front();
            }
            if did_wr {
                model.push_back(data);
            }
            s.tick(&cc);
        }
    }

    #[test]
    fn counter_with_reset() {
        let mut b = NetlistBuilder::new("cnt");
        let en = b.input("en", 1);
        let rst = b.input("rst", 1);
        let c = counter(&mut b, "c", 8, &en, Some(&rst));
        b.output("v", &c.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        for _ in 0..10 {
            step(&cc, &mut s, &[(0, true), (1, false)]);
        }
        s.eval(&cc);
        assert_eq!(out_bus(&cc, &s, 0, 8), 10);
        step(&cc, &mut s, &[(0, false), (1, true)]);
        s.eval(&cc);
        assert_eq!(out_bus(&cc, &s, 0, 8), 0, "reset wins over enable-off");
    }

    #[test]
    fn lfsr_is_maximal_length_for_width_8() {
        let mut b = NetlistBuilder::new("lfsr");
        let en = b.input("en", 1);
        let r = lfsr(&mut b, "l", 8, &en);
        b.output("v", &r.q());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            s.set_input(&cc, 0, true);
            s.eval(&cc);
            assert!(
                seen.insert(out_bus(&cc, &s, 0, 8)),
                "LFSR state repeated early"
            );
            s.tick(&cc);
        }
        s.eval(&cc);
        assert_eq!(out_bus(&cc, &s, 0, 8), 1, "period 255 returns to seed");
    }

    #[test]
    fn shift_register_delays() {
        let mut b = NetlistBuilder::new("sr");
        let en = b.input("en", 1);
        let d = b.input("d", 4);
        let stages = shift_register(&mut b, "p", 3, &en, &d);
        b.output("o", stages.last().unwrap());
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let seq = [3u64, 7, 1, 9, 12, 5, 0, 15];
        let mut outs = Vec::new();
        for &v in &seq {
            s.set_input(&cc, 0, true);
            for i in 0..4 {
                s.set_input(&cc, 1 + i, (v >> i) & 1 == 1);
            }
            s.eval(&cc);
            outs.push(out_bus(&cc, &s, 0, 4));
            s.tick(&cc);
        }
        // After 3 stages, input appears with 3-cycle latency.
        assert_eq!(&outs[3..], &seq[..5]);
    }

    #[test]
    fn rising_edge_pulses_once() {
        let mut b = NetlistBuilder::new("re");
        let sig = b.input("sig", 1);
        let e = rising_edge(&mut b, "ed", &sig);
        b.output("pulse", &e);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let pattern = [false, true, true, true, false, true, false];
        let mut pulses = Vec::new();
        for &v in &pattern {
            s.set_input(&cc, 0, v);
            s.eval(&cc);
            pulses.push(s.output_word(&cc, 0) & 1 == 1);
            s.tick(&cc);
        }
        assert_eq!(pulses, [false, true, false, false, false, true, false]);
    }
}
