//! The MAC packet-loopback testbench: stimulus, packet extraction and the
//! paper's failure classification.
//!
//! Mirrors §IV of the paper: "the corresponding testbench writes several
//! packets to the 10GE MAC transmit packet interface […] the XGMII TX
//! interface is looped-back to the XGMII RX interface […] eventually the
//! testbench reads frames from the packet receive interface"; a
//! fault-injection run is a functional failure "when the final received
//! packages contained payload corruption or the circuit stopped sending or
//! receiving data".

use crate::mac10ge::{Mac10ge, Mac10geConfig};
use ffr_fault::{FailureClass, FailureJudge};
use ffr_netlist::Netlist;
use ffr_sim::{CompiledCircuit, GoldenRun, InputFrame, LaneView, Stimulus, WatchList};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Packet traffic parameters for [`MacTestbench`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Number of packets written to the TX interface.
    pub num_packets: usize,
    /// Minimum payload length in words (must be at least `crc_words + 1`).
    pub min_payload: usize,
    /// Maximum payload length in words.
    pub max_payload: usize,
    /// Minimum idle gap between packets, in cycles.
    pub gap_min: usize,
    /// Maximum idle gap between packets, in cycles.
    pub gap_max: usize,
    /// Cycles the synchronous reset is held at the beginning.
    pub reset_cycles: u64,
    /// Drain cycles appended after the last packet.
    pub tail_cycles: u64,
    /// Seed for payload and gap randomisation.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            num_packets: 12,
            min_payload: 4,
            max_payload: 24,
            gap_min: 8,
            gap_max: 18,
            reset_cycles: 4,
            tail_cycles: 120,
            seed: 0xF00D,
        }
    }
}

impl TrafficConfig {
    /// Small traffic load for fast unit tests.
    pub fn small() -> TrafficConfig {
        TrafficConfig {
            num_packets: 4,
            min_payload: 3,
            max_payload: 8,
            tail_cycles: 90,
            ..TrafficConfig::default()
        }
    }
}

/// A packet as seen on the TX or RX packet interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Payload words (LSB-aligned in `data_width` bits).
    pub words: Vec<u64>,
    /// RX only: the frame arrived with a CRC error.
    pub error: bool,
    /// RX only: cycle at which the end-of-packet entry was delivered.
    pub eop_cycle: u64,
}

impl Packet {
    fn sent(words: Vec<u64>) -> Packet {
        Packet {
            words,
            error: false,
            eop_cycle: 0,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TxCmd {
    valid: bool,
    sop: bool,
    eop: bool,
    data: u64,
}

/// Open-loop packet stimulus for [`Mac10ge`] plus the golden traffic
/// description.
#[derive(Debug, Clone)]
pub struct MacTestbench {
    schedule: Vec<TxCmd>,
    packets: Vec<Packet>,
    num_cycles: u64,
    window: std::ops::Range<u64>,
    // Resolved input indices.
    in_rst: usize,
    in_tx_valid: usize,
    in_tx_sop: usize,
    in_tx_eop: usize,
    in_tx_data: usize,
    in_rx_ready: usize,
    data_width: usize,
    reset_cycles: u64,
}

impl MacTestbench {
    /// Build the stimulus for a MAC netlist (resolves the port indices) and
    /// precompute the packet schedule.
    ///
    /// # Panics
    ///
    /// Panics if the netlist lacks the MAC's ports or the traffic
    /// configuration is inconsistent.
    pub fn new(
        netlist: &Netlist,
        mac_cfg: &Mac10geConfig,
        traffic: &TrafficConfig,
    ) -> MacTestbench {
        assert!(
            traffic.min_payload > mac_cfg.crc_words(),
            "payload must exceed the CRC pipe depth"
        );
        assert!(traffic.min_payload <= traffic.max_payload);
        assert!(traffic.gap_min <= traffic.gap_max);
        let w = mac_cfg.data_width;
        let idx = |name: &str| {
            netlist
                .input_index(name)
                .unwrap_or_else(|| panic!("MAC netlist has no input `{name}`"))
        };
        let in_rst = idx("rst");
        let in_tx_valid = idx("tx_valid");
        let in_tx_sop = idx("tx_sop");
        let in_tx_eop = idx("tx_eop");
        let in_tx_data = idx(&format!("tx_data[{}]", 0));
        let in_rx_ready = idx("rx_ready");

        // Generate packets and the cycle-accurate schedule.
        let mut rng = ChaCha8Rng::seed_from_u64(traffic.seed);
        let mut schedule: Vec<TxCmd> = Vec::new();
        let mut packets = Vec::with_capacity(traffic.num_packets);
        let warmup = traffic.reset_cycles as usize + 4;
        schedule.resize(warmup, TxCmd::default());
        let word_mask = if w == 64 { !0u64 } else { (1u64 << w) - 1 };
        let first_send = schedule.len() as u64;
        for pkt_idx in 0..traffic.num_packets {
            let len = rng.gen_range(traffic.min_payload..=traffic.max_payload);
            let mut words = Vec::with_capacity(len);
            // First word identifies the packet and never collides with the
            // pause magic.
            words.push((0xA000 + pkt_idx as u64) & word_mask);
            for _ in 1..len {
                words.push(rng.gen::<u64>() & word_mask);
            }
            for (i, &word) in words.iter().enumerate() {
                schedule.push(TxCmd {
                    valid: true,
                    sop: i == 0,
                    eop: i == len - 1,
                    data: word,
                });
            }
            packets.push(Packet::sent(words));
            let gap = rng.gen_range(traffic.gap_min..=traffic.gap_max);
            schedule.extend(std::iter::repeat_n(TxCmd::default(), gap));
        }
        let last_send = schedule.len() as u64;
        let num_cycles = last_send + traffic.tail_cycles;
        // The paper injects "during the active phase of the simulation,
        // when packets are sent and received": from the first TX word to
        // shortly after the last word has drained through the loopback.
        let window = first_send..(last_send + 40).min(num_cycles);

        MacTestbench {
            schedule,
            packets,
            num_cycles,
            window,
            in_rst,
            in_tx_valid,
            in_tx_sop,
            in_tx_eop,
            in_tx_data,
            in_rx_ready,
            data_width: w,
            reset_cycles: traffic.reset_cycles,
        }
    }

    /// Convenience: build MAC + testbench + watch list + golden run in one
    /// call (the common setup of every experiment).
    pub fn setup(
        mac_cfg: Mac10geConfig,
        traffic: &TrafficConfig,
    ) -> (CompiledCircuit, MacTestbench, WatchList, PacketExtractor) {
        let mac = Mac10ge::build(mac_cfg.clone());
        let cc = CompiledCircuit::compile(mac.into_netlist()).expect("MAC has no comb cycles");
        let tb = MacTestbench::new(cc.netlist(), &mac_cfg, traffic);
        let (watch, extractor) = PacketExtractor::watch(&cc, &mac_cfg);
        (cc, tb, watch, extractor)
    }

    /// Packets written to the TX interface (the expected RX traffic).
    pub fn sent_packets(&self) -> &[Packet] {
        &self.packets
    }

    /// The paper's "active phase" injection window.
    pub fn injection_window(&self) -> std::ops::Range<u64> {
        self.window.clone()
    }
}

impl Stimulus for MacTestbench {
    fn num_cycles(&self) -> u64 {
        self.num_cycles
    }

    fn drive(&self, cycle: u64, frame: &mut InputFrame) {
        frame.set(self.in_rst, cycle < self.reset_cycles);
        frame.set(self.in_rx_ready, true);
        let cmd = self
            .schedule
            .get(cycle as usize)
            .copied()
            .unwrap_or_default();
        frame.set(self.in_tx_valid, cmd.valid);
        frame.set(self.in_tx_sop, cmd.sop);
        frame.set(self.in_tx_eop, cmd.eop);
        frame.set_bus(self.in_tx_data, self.data_width, cmd.data);
    }
}

/// Decodes the RX packet interface from a recorded output trace.
#[derive(Debug, Clone)]
pub struct PacketExtractor {
    w_valid: usize,
    w_sop: usize,
    w_eop: usize,
    w_err: usize,
    w_data: Vec<usize>,
}

impl PacketExtractor {
    /// Build the watch list covering the RX packet interface and the
    /// matching extractor.
    pub fn watch(cc: &CompiledCircuit, mac_cfg: &Mac10geConfig) -> (WatchList, PacketExtractor) {
        let mut watch = WatchList::empty();
        let w_valid = watch.push_bus(cc, "rx_valid", 1)[0];
        let w_sop = watch.push_bus(cc, "rx_sop", 1)[0];
        let w_eop = watch.push_bus(cc, "rx_eop", 1)[0];
        let w_err = watch.push_bus(cc, "rx_err", 1)[0];
        let w_data = watch.push_bus(cc, "rx_data", mac_cfg.data_width);
        (
            watch,
            PacketExtractor {
                w_valid,
                w_sop,
                w_eop,
                w_err,
                w_data,
            },
        )
    }

    /// Walk a scenario's RX interface and reassemble the received packets.
    pub fn extract(&self, view: &LaneView<'_>) -> Vec<Packet> {
        let mut packets = Vec::new();
        let mut current: Option<Packet> = None;
        for cycle in 0..view.num_cycles() {
            if !view.bit(self.w_valid, cycle) {
                continue;
            }
            let sop = view.bit(self.w_sop, cycle);
            let eop = view.bit(self.w_eop, cycle);
            let err = view.bit(self.w_err, cycle);
            if eop {
                let mut pkt = current.take().unwrap_or(Packet {
                    words: Vec::new(),
                    error: false,
                    eop_cycle: 0,
                });
                pkt.error |= err;
                pkt.eop_cycle = cycle;
                packets.push(pkt);
            } else {
                if sop || current.is_none() {
                    // A sop mid-packet abandons the previous fragment —
                    // it can only happen under fault injection.
                    if let Some(frag) = current.take() {
                        let mut frag = frag;
                        frag.error = true;
                        frag.eop_cycle = cycle;
                        packets.push(frag);
                    }
                    current = Some(Packet {
                        words: Vec::new(),
                        error: false,
                        eop_cycle: 0,
                    });
                }
                let word = view.value(&self.w_data, cycle);
                if let Some(pkt) = current.as_mut() {
                    pkt.words.push(word);
                }
            }
        }
        if let Some(mut frag) = current.take() {
            // Truncated frame at end of simulation.
            frag.error = true;
            frag.eop_cycle = view.num_cycles();
            packets.push(frag);
        }
        packets
    }
}

/// The paper's failure classifier for the MAC (§IV-A).
///
/// Implements [`FailureJudge`]: compares the packets received in a fault
/// scenario against the golden reception, reporting payload corruption,
/// frame loss or a traffic hang.
#[derive(Debug, Clone)]
pub struct MacJudge {
    extractor: PacketExtractor,
    golden_packets: Vec<Packet>,
}

impl MacJudge {
    /// Build the judge from the golden run.
    ///
    /// # Panics
    ///
    /// Panics if the golden run itself contains errored frames — that
    /// indicates a broken testbench, not a fault effect.
    pub fn new(extractor: PacketExtractor, golden: &GoldenRun) -> MacJudge {
        let golden_view = LaneView::golden(&golden.trace);
        let golden_packets = extractor.extract(&golden_view);
        assert!(
            golden_packets.iter().all(|p| !p.error),
            "golden run received errored frames"
        );
        MacJudge {
            extractor,
            golden_packets,
        }
    }

    /// Packets received in the golden run.
    pub fn golden_packets(&self) -> &[Packet] {
        &self.golden_packets
    }
}

impl FailureJudge for MacJudge {
    fn classify(
        &self,
        _golden: &LaneView<'_>,
        faulty: &LaneView<'_>,
        inject_cycle: u64,
    ) -> FailureClass {
        let got = self.extractor.extract(faulty);
        let want = &self.golden_packets;

        // Greedy subsequence match of the intact received frames against
        // the expected traffic. Packet payloads start with a unique
        // per-packet identifier, so exact word equality is a reliable
        // match criterion.
        let any_error = got.iter().any(|p| p.error);
        let mut wi = 0usize;
        let mut matched = 0usize;
        let mut spurious = 0usize;
        for g in got.iter().filter(|p| !p.error) {
            match want[wi..].iter().position(|w| w.words == g.words) {
                Some(k) => {
                    wi += k + 1;
                    matched += 1;
                }
                None => spurious += 1,
            }
        }

        if spurious > 0 {
            // A frame arrived whose payload matches nothing we sent:
            // corrupted or fabricated data reached the user.
            return FailureClass::PayloadCorruption;
        }
        if matched < want.len() {
            // Frames are missing. If reception stopped exactly at the
            // injection point (nothing arrived afterwards), the circuit
            // hung; otherwise individual frames were lost.
            let before_inject = want.iter().filter(|p| p.eop_cycle < inject_cycle).count();
            return if matched <= before_inject {
                FailureClass::Hang
            } else {
                FailureClass::FrameLoss
            };
        }
        if any_error {
            // All expected payloads arrived, but the receiver also
            // flagged damaged frame(s).
            return FailureClass::FrameLoss;
        }
        FailureClass::Benign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_fault::{Campaign, CampaignConfig};

    fn setup_small() -> (CompiledCircuit, MacTestbench, WatchList, PacketExtractor) {
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small())
    }

    #[test]
    fn golden_run_receives_all_packets() {
        let (cc, tb, watch, extractor) = setup_small();
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let view = LaneView::golden(&golden.trace);
        let got = extractor.extract(&view);
        assert_eq!(got.len(), tb.sent_packets().len(), "all packets received");
        for (g, s) in got.iter().zip(tb.sent_packets()) {
            assert!(!g.error, "golden frame errored");
            assert_eq!(g.words, s.words, "payload intact");
        }
    }

    #[test]
    fn golden_run_receives_all_packets_default_config() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::default(), &TrafficConfig::default());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let got = extractor.extract(&LaneView::golden(&golden.trace));
        assert_eq!(got.len(), tb.sent_packets().len());
        for (g, s) in got.iter().zip(tb.sent_packets()) {
            assert!(!g.error);
            assert_eq!(g.words, s.words);
        }
    }

    #[test]
    fn judge_classifies_golden_as_benign() {
        let (cc, tb, watch, extractor) = setup_small();
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let view = LaneView::golden(&golden.trace);
        assert_eq!(
            judge.classify(&view, &view, tb.injection_window().start),
            FailureClass::Benign
        );
    }

    #[test]
    fn fifo_data_faults_corrupt_payload() {
        let (cc, tb, watch, extractor) = setup_small();
        let campaign_judge = {
            let golden = GoldenRun::capture(&cc, &tb, &watch);
            MacJudge::new(extractor, &golden)
        };
        let campaign = Campaign::new(&cc, &tb, &watch, &campaign_judge);
        let config = CampaignConfig::new(tb.injection_window())
            .with_injections(40)
            .with_seed(1);

        // A TX FIFO payload bit: vulnerable while occupied.
        let fifo_ff = cc
            .netlist()
            .find_ff("tx_fifo_mem0_reg[3]")
            .expect("fifo bit exists");
        let r = campaign.run_ff(fifo_ff, &config);
        assert!(
            r.fdr() > 0.0,
            "occupied FIFO bits must sometimes corrupt payloads"
        );
        assert!(r.fdr() < 1.0, "unoccupied windows must be benign");

        // A benign status counter bit.
        let benign_ff = cc
            .netlist()
            .find_ff("uptime_reg[5]")
            .expect("uptime bit exists");
        let r = campaign.run_ff(benign_ff, &config);
        assert_eq!(r.fdr(), 0.0, "uptime is functionally inert");
    }

    #[test]
    fn state_machine_faults_cause_failures() {
        let (cc, tb, watch, extractor) = setup_small();
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let campaign = Campaign::new(&cc, &tb, &watch, &judge);
        let config = CampaignConfig::new(tb.injection_window())
            .with_injections(40)
            .with_seed(2);
        let state_ff = cc.netlist().find_ff("tx_state_reg[0]").expect("state bit");
        let r = campaign.run_ff(state_ff, &config);
        assert!(
            r.fdr() > 0.1,
            "TX FSM upsets must disrupt traffic, fdr = {}",
            r.fdr()
        );
    }

    #[test]
    fn pause_timer_msb_hangs_traffic() {
        let (cc, tb, watch, extractor) = setup_small();
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let campaign = Campaign::new(&cc, &tb, &watch, &judge);
        let config = CampaignConfig::new(tb.injection_window())
            .with_injections(30)
            .with_seed(3);
        let msb = cc
            .netlist()
            .find_ff("pause_timer_reg[15]")
            .expect("pause msb");
        let lsb = cc
            .netlist()
            .find_ff("pause_timer_reg[0]")
            .expect("pause lsb");
        let r_msb = campaign.run_ff(msb, &config);
        let r_lsb = campaign.run_ff(lsb, &config);
        assert!(
            r_msb.fdr() >= r_lsb.fdr(),
            "stalling 32k cycles must be at least as harmful as 1 cycle: msb {} lsb {}",
            r_msb.fdr(),
            r_lsb.fdr()
        );
        assert!(r_msb.fdr() > 0.3, "pause MSB should hang traffic");
    }
}
