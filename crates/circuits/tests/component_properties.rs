//! Property tests of the RTL component library against software models.

use ffr_circuits::components::{crc32_update, crc32_update_sw, sync_fifo};
use ffr_circuits::{Mac10geConfig, MacTestbench, PacketExtractor, TrafficConfig};
use ffr_netlist::NetlistBuilder;
use ffr_sim::{CompiledCircuit, GoldenRun, LaneView, SimState};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hardware CRC equals the software model for arbitrary word
    /// sequences folded in succession.
    #[test]
    fn crc_hardware_equals_software(words in proptest::collection::vec(any::<u16>(), 1..12)) {
        let mut b = NetlistBuilder::new("crc");
        let data = b.input("data", 16);
        let crc_in = b.input("crc_in", 32);
        let out = crc32_update(&mut b, &crc_in, &data);
        b.output("crc_out", &out);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);

        let mut crc = 0xFFFF_FFFFu32;
        for &w in &words {
            for i in 0..16 {
                s.set_input(&cc, i, (w >> i) & 1 == 1);
            }
            for i in 0..32 {
                s.set_input(&cc, 16 + i, (crc >> i) & 1 == 1);
            }
            s.eval(&cc);
            let got = (0..32).fold(0u32, |acc, i| {
                acc | ((s.output_word(&cc, i) as u32 & 1) << i)
            });
            crc = crc32_update_sw(crc, w as u64, 16);
            prop_assert_eq!(got, crc);
        }
    }

    /// The synchronous FIFO matches a queue model under random
    /// read/write traffic, for several depths.
    #[test]
    fn fifo_matches_queue_model(
        addr_bits in 1usize..4,
        traffic in proptest::collection::vec(any::<(bool, bool, u8)>(), 1..120),
    ) {
        let mut b = NetlistBuilder::new("fifo");
        let wr_en = b.input("wr_en", 1);
        let wr_data = b.input("wr_data", 8);
        let rd_en = b.input("rd_en", 1);
        let ports = sync_fifo(&mut b, "f", addr_bits, &wr_en, &wr_data, &rd_en);
        b.output("rd_data", &ports.rd_data);
        b.output("empty", &ports.empty);
        b.output("full", &ports.full);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();
        let mut s = SimState::new(&cc);
        let depth = 1usize << addr_bits;
        let mut model: VecDeque<u64> = VecDeque::new();

        for &(wr, rd, data) in &traffic {
            s.set_input(&cc, 0, wr);
            for i in 0..8 {
                s.set_input(&cc, 1 + i, (data >> i) & 1 == 1);
            }
            s.set_input(&cc, 9, rd);
            s.eval(&cc);

            let empty = s.output_word(&cc, 8) & 1 == 1;
            let full = s.output_word(&cc, 9) & 1 == 1;
            prop_assert_eq!(empty, model.is_empty());
            prop_assert_eq!(full, model.len() == depth);
            if let Some(&head) = model.front() {
                let got = (0..8).fold(0u64, |acc, i| acc | ((s.output_word(&cc, i) & 1) << i));
                prop_assert_eq!(got, head);
            }

            let did_wr = wr && model.len() < depth;
            let did_rd = rd && !model.is_empty();
            if did_rd {
                model.pop_front();
            }
            if did_wr {
                model.push_back(data as u64);
            }
            s.tick(&cc);
        }
    }

    /// The MAC delivers all packets intact for arbitrary (valid) traffic
    /// shapes and seeds — the golden run is always clean.
    #[test]
    fn mac_loopback_is_lossless_for_any_traffic(
        num_packets in 1usize..6,
        min_payload in 3usize..6,
        extra in 0usize..8,
        gap in 4usize..12,
        seed in any::<u64>(),
    ) {
        let traffic = TrafficConfig {
            num_packets,
            min_payload,
            max_payload: min_payload + extra,
            gap_min: gap,
            gap_max: gap + 6,
            reset_cycles: 4,
            tail_cycles: 90,
            seed,
        };
        let (cc, tb, watch, extractor) = MacTestbench::setup(Mac10geConfig::small(), &traffic);
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let got = extractor.extract(&LaneView::golden(&golden.trace));
        prop_assert_eq!(got.len(), tb.sent_packets().len());
        for (g, s) in got.iter().zip(tb.sent_packets()) {
            prop_assert!(!g.error);
            prop_assert_eq!(&g.words, &s.words);
        }
    }
}

#[test]
fn extractor_watch_offsets_are_stable() {
    // The failure-injection integration tests rely on watch offsets 0..3
    // being valid/sop/eop/err and 4.. being data; pin that layout.
    let (cc, _tb, watch, _ex) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    assert_eq!(watch.len(), 4 + 16);
    let _ = PacketExtractor::watch(&cc, &Mac10geConfig::small());
}
