//! Criterion bench: the end-to-end estimation flow at reduced scale —
//! golden run + features + partial campaign + training + prediction
//! (what a user of the methodology actually pays per circuit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_core::{EstimationFlow, FlowConfig, ModelKind};
use ffr_sim::GoldenRun;

fn bench_flow(c: &mut Criterion) {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("flow_setup_golden_plus_features", |b| {
        b.iter(|| {
            let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
            std::hint::black_box(flow.features().num_rows())
        });
    });

    let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
    for kind in [ModelKind::Knn, ModelKind::DecisionTree] {
        let config = FlowConfig {
            training_fraction: 0.3,
            injections_per_ff: 8,
            window: tb.injection_window(),
            seed: 7,
        };
        group.bench_with_input(
            BenchmarkId::new("estimate_30pct", kind.display_name()),
            &kind,
            |b, &kind| {
                b.iter(|| std::hint::black_box(flow.estimate(kind, &config).circuit_fdr()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
