//! Criterion bench: gate-level simulator throughput.
//!
//! Measures compiled-op evaluation rate on the MAC and a small counter,
//! both per-cycle and for a whole testbench run. This is the substrate
//! cost every fault-injection number in the reproduction rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{small, Mac10geConfig, MacTestbench, TrafficConfig};
use ffr_sim::{run_testbench, CompiledCircuit, SimState};

fn bench_eval_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_eval_cycle");
    let mac = ffr_circuits::Mac10ge::build(Mac10geConfig::small());
    let mac_cc = CompiledCircuit::compile(mac.into_netlist()).unwrap();
    let counter_cc = CompiledCircuit::compile(small::counter_circuit(16)).unwrap();
    for (name, cc) in [("counter16", &counter_cc), ("mac_small", &mac_cc)] {
        group.throughput(Throughput::Elements(cc.num_ops() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), cc, |b, cc| {
            let mut state = SimState::new(cc);
            b.iter(|| {
                state.eval(cc);
                state.tick(cc);
                std::hint::black_box(state.cycle())
            });
        });
    }
    group.finish();
}

fn bench_testbench_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_testbench_run");
    group.sample_size(20);
    let (cc, tb, watch, _) = MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    group.bench_function("mac_small_full_tb", |b| {
        b.iter(|| std::hint::black_box(run_testbench(&cc, &tb, &watch).trace.end()));
    });
    group.finish();
}

criterion_group!(benches, bench_eval_cycle, bench_testbench_run);
criterion_main!(benches);
