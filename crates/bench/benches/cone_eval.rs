//! Criterion bench: cone-restricted vs full-circuit evaluation.
//!
//! The campaign inner loop evaluates only the injection point's fan-out
//! cone ([`ffr_sim::Cone`]), broadcasting golden boundary values each
//! cycle instead of replaying the stimulus. This bench pins the win:
//! `full` is the whole-circuit eval+tick floor, the `cone_*` cases run
//! the cone loop (load_boundary + eval_cone + tick_cone) for the largest
//! flip-flop cone, a median one and the smallest — spanning the best and
//! worst case an SEU campaign sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{Mac10ge, Mac10geConfig};
use ffr_netlist::FfId;
use ffr_sim::{CompiledCircuit, SimState};

fn bench_cone_vs_full(c: &mut Criterion) {
    let mac = Mac10ge::build(Mac10geConfig::small());
    let cc = CompiledCircuit::compile(mac.into_netlist()).unwrap();

    // Rank every SEU cone by op count to pick representative sizes.
    let mut by_size: Vec<usize> = (0..cc.num_ffs()).collect();
    by_size.sort_by_key(|&i| cc.ff_cone(FfId::from_index(i)).num_ops());
    let largest = *by_size.last().unwrap();
    let median = by_size[by_size.len() / 2];
    let smallest = by_size[0];

    let mut group = c.benchmark_group("cone_eval");
    group.throughput(Throughput::Elements(cc.num_ops() as u64));

    group.bench_function(BenchmarkId::from_parameter("full"), |b| {
        let mut state = SimState::new(&cc);
        b.iter(|| {
            state.eval(&cc);
            state.tick(&cc);
            std::hint::black_box(state.cycle())
        });
    });

    let cases = [
        ("cone_largest_ff", largest),
        ("cone_median_ff", median),
        ("cone_smallest_ff", smallest),
    ];
    for (name, ff) in cases {
        // Compiled once, like the campaign engine does per point.
        let cone = cc.ff_cone(FfId::from_index(ff));
        let boundary_row = vec![0u64; cc.netlist().num_nets().div_ceil(64)];
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut state = SimState::new(&cc);
            b.iter(|| {
                state.load_boundary(&cone, &boundary_row);
                state.eval_cone(&cone);
                state.tick_cone(&cone);
                std::hint::black_box(state.cycle())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cone_vs_full);
criterion_main!(benches);
