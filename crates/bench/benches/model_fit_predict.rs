//! Criterion bench: fit/predict cost of every regression model on a
//! paper-sized synthetic dataset (1054 samples × 25 features).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffr_core::ModelKind;
use ffr_ml::Regressor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn synthetic(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| ((r[0] * r[1] * 2.0).min(1.0) * (1.0 - r[2] * 0.3)).clamp(0.0, 1.0))
        .collect();
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = synthetic(527, 25); // 50% training size of 1054
    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        // The MLP dominates runtime; skip it here (it has its own bench).
        if kind == ModelKind::Mlp {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.display_name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut m = kind.build();
                    m.fit(&x, &y);
                    std::hint::black_box(m.predict_one(&x[0]))
                });
            },
        );
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synthetic(527, 25);
    let (qx, _) = synthetic(527, 25);
    let mut group = c.benchmark_group("model_predict_527");
    group.sample_size(10);
    for kind in [
        ModelKind::LinearLeastSquares,
        ModelKind::Knn,
        ModelKind::SvrRbf,
    ] {
        let mut m = kind.build();
        m.fit(&x, &y);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.display_name()),
            &m,
            |b, m| {
                b.iter(|| std::hint::black_box(m.predict(&qx).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
