//! Criterion bench: forced (SET) vs plain combinational evaluation.
//!
//! `eval_forced` used to pay an `O(num_ops)` driver pre-scan plus an
//! `out == target` branch in every op of every call; the compiled
//! [`FaultSite`](ffr_sim::FaultSite) form splits the op list at the
//! forced op instead, so forced evaluation should track plain `eval`
//! closely. This bench pins that: `plain` is the floor, `forced_*` the
//! SET-campaign inner loop on a deep net, a shallow net and a source
//! (flip-flop Q) net.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{Mac10ge, Mac10geConfig};
use ffr_netlist::NetId;
use ffr_sim::{CompiledCircuit, SimState};

fn bench_forced_vs_plain(c: &mut Criterion) {
    let mac = Mac10ge::build(Mac10geConfig::small());
    let cc = CompiledCircuit::compile(mac.into_netlist()).unwrap();
    let nets = cc.comb_output_nets();
    // Deepest and shallowest gate-driven nets, plus a source net.
    let deep = *nets
        .iter()
        .max_by_key(|&&n| cc.net_level(n))
        .expect("MAC has combinational nets");
    let shallow = *nets
        .iter()
        .min_by_key(|&&n| cc.net_level(n))
        .expect("MAC has combinational nets");
    let q_net = cc.netlist().ff_q_net(ffr_netlist::FfId::from_index(0));

    let mut group = c.benchmark_group("forced_eval");
    group.throughput(Throughput::Elements(cc.num_ops() as u64));

    group.bench_function(BenchmarkId::from_parameter("plain"), |b| {
        let mut state = SimState::new(&cc);
        b.iter(|| {
            state.eval(&cc);
            state.tick(&cc);
            std::hint::black_box(state.cycle())
        });
    });

    let targets: [(&str, NetId); 3] = [
        ("forced_deep_net", deep),
        ("forced_shallow_net", shallow),
        ("forced_q_net", q_net),
    ];
    for (name, net) in targets {
        // Compiled once, like the campaign engine does per batch.
        let site = cc.fault_site(net);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut state = SimState::new(&cc);
            b.iter(|| {
                state.eval_forced_site(&cc, site, 0xAAAA_5555_AAAA_5555);
                state.tick(&cc);
                std::hint::black_box(state.cycle())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forced_vs_plain);
criterion_main!(benches);
