//! Criterion bench: per-flip-flop feature extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{Mac10ge, Mac10geConfig, MacTestbench, TrafficConfig};
use ffr_features::{extract_features, extract_structural, FfGraph};
use ffr_sim::{run_testbench, CompiledCircuit};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(20);
    for (name, cfg) in [
        ("mac_small", Mac10geConfig::small()),
        ("mac_paper", Mac10geConfig::default()),
    ] {
        let mac = Mac10ge::build(cfg.clone());
        let cc = CompiledCircuit::compile(mac.into_netlist()).unwrap();
        group.throughput(Throughput::Elements(cc.num_ffs() as u64));
        group.bench_with_input(BenchmarkId::new("structural", name), &cc, |b, cc| {
            b.iter(|| std::hint::black_box(extract_structural(cc).num_rows()));
        });
        group.bench_with_input(BenchmarkId::new("ff_graph", name), &cc, |b, cc| {
            b.iter(|| std::hint::black_box(FfGraph::build(cc.netlist()).num_ffs()));
        });
    }
    group.finish();
}

fn bench_full_extraction_with_activity(c: &mut Criterion) {
    let (cc, tb, watch, _) = MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let run = run_testbench(&cc, &tb, &watch);
    let mut group = c.benchmark_group("feature_extraction_full");
    group.sample_size(20);
    group.bench_function("mac_small_all_25_features", |b| {
        b.iter(|| std::hint::black_box(extract_features(&cc, &run.activity).num_rows()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_full_extraction_with_activity
);
criterion_main!(benches);
