//! Criterion bench: event-driven frontier vs static cone evaluation.
//!
//! The frontier path evaluates only the cone ops whose inputs currently
//! differ from the golden [`ffr_sim::NetJournal`] values, so its cost
//! tracks the *live divergence* of an injection, not the cone size. This
//! bench runs both inner loops over a real mac-small testbench window
//! with a real all-lanes SEU injection on representative cones and
//! reports throughput in cone-op equivalents (the work the static cone
//! path performs over the same window) — the frontier/cone ratio is the
//! event-driven win, apples to apples with the `cone_eval` bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{Mac10geConfig, MacTestbench, TrafficConfig};
use ffr_netlist::FfId;
use ffr_sim::{FrontierScratch, GoldenRun, NetJournal, SimState, Stimulus};

fn bench_frontier_vs_cone(c: &mut Criterion) {
    let (cc, tb, watch, _extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let netj = NetJournal::capture(&cc, &tb);
    let t0 = tb.injection_window().start;
    let end = tb.num_cycles();

    // Rank every SEU cone by op count to pick representative sizes.
    let mut by_size: Vec<usize> = (0..cc.num_ffs()).collect();
    by_size.sort_by_key(|&i| cc.ff_cone(FfId::from_index(i)).num_ops());
    let cases = [
        ("largest_ff", *by_size.last().unwrap()),
        ("median_ff", by_size[by_size.len() / 2]),
    ];

    let mut group = c.benchmark_group("frontier_eval");
    group.sample_size(20);
    for (name, ff) in cases {
        let cone = cc.ff_cone(FfId::from_index(ff));
        // Both loops do the work the static cone path counts.
        group.throughput(Throughput::Elements(cone.num_ops() as u64 * (end - t0)));

        group.bench_function(BenchmarkId::new("cone", name), |b| {
            let mut state = SimState::new(&cc);
            b.iter(|| {
                state.load_cone_state_broadcast(&cone, golden.journal.state_at(t0));
                state.set_cycle(t0);
                for cycle in t0..end {
                    state.load_boundary(&cone, netj.row(cycle));
                    if cycle == t0 {
                        state.flip_ff(&cc, FfId::from_index(ff), !0u64);
                    }
                    state.eval_cone(&cone);
                    state.tick_cone(&cone);
                }
                std::hint::black_box(state.cycle())
            });
        });

        group.bench_function(BenchmarkId::new("frontier", name), |b| {
            let mut state = SimState::new(&cc);
            let mut fs = FrontierScratch::new();
            b.iter(|| {
                fs.attach(&cone);
                state.set_cycle(t0);
                for cycle in t0..end {
                    let row = netj.row(cycle);
                    if cycle == t0 {
                        state.flip_frontier(&cone, &mut fs, row, !0u64);
                    }
                    state.eval_frontier(&cone, &mut fs, row);
                    let next = cycle + 1;
                    state.tick_frontier(
                        &cone,
                        &mut fs,
                        if next < end {
                            Some(netj.row(next))
                        } else {
                            None
                        },
                    );
                }
                std::hint::black_box(fs.ops_evaluated())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontier_vs_cone);
criterion_main!(benches);
