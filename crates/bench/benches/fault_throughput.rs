//! Criterion bench: fault-injection engine throughput and the early-exit
//! ablation.
//!
//! `per_ff_*` measures one flip-flop's campaign (64-lane batches) with and
//! without the convergence early-exit — the design choice DESIGN.md calls
//! out as the main fault-sim optimisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_fault::{Campaign, CampaignConfig};
use ffr_netlist::FfId;
use ffr_sim::GoldenRun;

fn bench_per_ff(c: &mut Criterion) {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    let campaign = Campaign::new(&cc, &tb, &watch, &judge);

    let mut group = c.benchmark_group("fault_per_ff");
    group.sample_size(20);
    let injections = 64usize;
    group.throughput(Throughput::Elements(injections as u64));
    // A datapath FF (converges fast) and a config FF (never converges).
    let targets = [
        (
            "fifo_bit",
            cc.netlist().find_ff("tx_fifo_mem0_reg[3]").unwrap(),
        ),
        (
            "cfg_bit",
            cc.netlist().find_ff("cfg_mac_addr_reg[7]").unwrap(),
        ),
    ];
    for (name, ff) in targets {
        for early_exit in [true, false] {
            let mut config = CampaignConfig::new(tb.injection_window())
                .with_injections(injections)
                .with_seed(3);
            config.early_exit = early_exit;
            let label = format!("{name}/early_exit={early_exit}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &ff, |b, &ff| {
                b.iter(|| std::hint::black_box(campaign.run_ff(ff, &config).fdr()));
            });
        }
    }
    group.finish();
}

fn bench_golden_capture(c: &mut Criterion) {
    let (cc, tb, watch, _) = MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let mut group = c.benchmark_group("fault_golden_capture");
    group.sample_size(20);
    group.bench_function("mac_small", |b| {
        b.iter(|| std::hint::black_box(GoldenRun::capture(&cc, &tb, &watch).journal.cycles()));
    });
    group.finish();
}

fn bench_ff_batch(c: &mut Criterion) {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    let campaign = Campaign::new(&cc, &tb, &watch, &judge);
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(16)
        .with_seed(5);
    let mut group = c.benchmark_group("fault_small_subset");
    group.sample_size(10);
    let ffs: Vec<FfId> = (0..32).map(FfId::from_index).collect();
    group.throughput(Throughput::Elements((ffs.len() * 16) as u64));
    group.bench_function("32ffs_x16inj_parallel", |b| {
        b.iter(|| {
            std::hint::black_box(
                campaign
                    .run_parallel_subset(&ffs, &config, |_, _| {})
                    .circuit_fdr(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_per_ff, bench_golden_capture, bench_ff_batch);
criterion_main!(benches);
