//! Shared experiment harness for the per-table / per-figure binaries and
//! the Criterion microbenchmarks.
//!
//! Every binary works on the same **reference dataset** (MAC features +
//! flat-campaign FDR); collecting it is the expensive step, so it is
//! cached as JSON under `target/ffr-cache/`, keyed by the experiment
//! scale.
//!
//! Scale is controlled by the `FFR_SCALE` environment variable:
//!
//! * `paper` (default) — the paper's setting: 1054-FF MAC, 170 injections
//!   per flip-flop;
//! * `quick` — a reduced MAC and fewer injections, for smoke runs and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy_study;

use ffr_campaign::{ArtifactKind, ArtifactStore, StoreKey};
use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, PacketExtractor, TrafficConfig};
use ffr_core::ReferenceDataset;
use ffr_fault::CampaignConfig;
use ffr_sim::{CompiledCircuit, GoldenRun, WatchList};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full setting (default).
    Paper,
    /// Reduced setting for smoke runs (`FFR_SCALE=quick`).
    Quick,
}

impl Scale {
    /// Read the scale from `FFR_SCALE` (default: `paper`).
    pub fn from_env() -> Scale {
        match std::env::var("FFR_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// Cache-key tag.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }

    /// MAC configuration at this scale.
    pub fn mac_config(self) -> Mac10geConfig {
        match self {
            Scale::Paper => Mac10geConfig::default(),
            Scale::Quick => Mac10geConfig::small(),
        }
    }

    /// Traffic configuration at this scale.
    pub fn traffic(self) -> TrafficConfig {
        match self {
            Scale::Paper => TrafficConfig::default(),
            Scale::Quick => TrafficConfig::small(),
        }
    }

    /// Injections per flip-flop at this scale (the paper uses 170).
    pub fn injections_per_ff(self) -> usize {
        match self {
            Scale::Paper => 170,
            Scale::Quick => 24,
        }
    }
}

/// Cache directory (`target/ffr-cache`), created on demand.
///
/// Now the root of a content-addressed [`ArtifactStore`] rather than a
/// pile of ad-hoc JSON files: artifacts are keyed by the netlist and the
/// full experiment configuration, so changing the MAC or campaign knobs
/// misses cleanly instead of serving stale data.
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/ffr-cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// The experiment artifact store rooted at [`cache_dir`].
pub fn artifact_store() -> ArtifactStore {
    ArtifactStore::open(cache_dir()).expect("open artifact store")
}

/// Content-address of the reference dataset at `scale`.
fn dataset_key(scale: Scale, cc: &CompiledCircuit) -> StoreKey {
    StoreKey::of(
        cc.netlist(),
        &format!(
            "bench-dataset;scale={};traffic={:?};injections={};seed=2019",
            scale.tag(),
            scale.traffic(),
            scale.injections_per_ff()
        ),
    )
}

/// The compiled MAC experiment environment.
pub struct MacSetup {
    /// Compiled circuit.
    pub cc: CompiledCircuit,
    /// Packet testbench.
    pub tb: MacTestbench,
    /// Watched outputs.
    pub watch: WatchList,
    /// RX packet decoder.
    pub extractor: PacketExtractor,
    /// Scale the setup was built at (part of the artifact cache address).
    pub scale: Scale,
}

/// Build the MAC, testbench and watch list at the given scale.
pub fn mac_setup(scale: Scale) -> MacSetup {
    let (cc, tb, watch, extractor) = MacTestbench::setup(scale.mac_config(), &scale.traffic());
    MacSetup {
        cc,
        tb,
        watch,
        extractor,
        scale,
    }
}

/// Build the failure judge for a setup (reuses a cached golden run).
pub fn mac_judge(setup: &MacSetup) -> MacJudge {
    let golden = golden_run(setup);
    MacJudge::new(setup.extractor.clone(), &golden)
}

/// The golden reference run for a setup, served from the artifact store
/// when available (it is the most expensive part of experiment setup).
pub fn golden_run(setup: &MacSetup) -> GoldenRun {
    let store = artifact_store();
    let scale = setup.scale;
    let key = StoreKey::of(
        setup.cc.netlist(),
        &format!(
            "bench-golden;scale={};traffic={:?}",
            scale.tag(),
            scale.traffic()
        ),
    );
    if let Ok(Some(golden)) = store.get::<GoldenRun>(ArtifactKind::GoldenRun, &key) {
        return golden;
    }
    let golden = GoldenRun::capture(&setup.cc, &setup.tb, &setup.watch);
    if let Err(e) = store.put(ArtifactKind::GoldenRun, &key, &golden) {
        eprintln!("[ffr-bench] warning: failed to cache golden run: {e}");
    }
    golden
}

/// Load the cached reference dataset for `scale`, or run the full flat
/// campaign (§IV-A) and cache it in the artifact store.
pub fn load_or_collect_dataset(scale: Scale) -> ReferenceDataset {
    let store = artifact_store();
    let setup = mac_setup(scale);
    let key = dataset_key(scale, &setup.cc);
    if let Ok(Some(ds)) = store.get::<ReferenceDataset>(ArtifactKind::Dataset, &key) {
        eprintln!("[ffr-bench] dataset served from artifact store ({key})");
        return ds;
    }
    let judge = mac_judge(&setup);
    let config = CampaignConfig::new(setup.tb.injection_window())
        .with_injections(scale.injections_per_ff())
        .with_seed(2019);
    eprintln!(
        "[ffr-bench] running flat campaign: {} FFs x {} injections...",
        setup.cc.num_ffs(),
        config.injections_per_ff
    );
    let t0 = Instant::now();
    let ds = ReferenceDataset::collect(
        &setup.cc,
        &setup.tb,
        &setup.watch,
        &judge,
        &config,
        |done, total| {
            if done % 100 == 0 || done == total {
                eprint!("\r[ffr-bench] {done}/{total} flip-flops");
                let _ = std::io::stderr().flush();
            }
        },
    );
    eprintln!("\n[ffr-bench] campaign done in {:.1?}", t0.elapsed());
    if let Err(e) = store.put(ArtifactKind::Dataset, &key, &ds) {
        eprintln!("[ffr-bench] warning: failed to cache dataset: {e}");
    }
    ds
}

/// SET-campaign target nets for a setup: every combinational op output
/// at paper scale, a deterministic 1-in-8 stratified subsample at quick
/// scale (the SET universe is several times larger than the flip-flop
/// one, and smoke runs only need the shape of the distribution).
pub fn set_target_nets(scale: Scale, cc: &CompiledCircuit) -> Vec<ffr_netlist::NetId> {
    let nets = cc.comb_output_nets();
    match scale {
        Scale::Paper => nets,
        Scale::Quick => nets.into_iter().step_by(8).collect(),
    }
}

/// Load the cached SET de-rating table for `scale`, or run the
/// combinational-net transient campaign over [`set_target_nets`] and
/// cache it in the artifact store.
pub fn load_or_run_set_table(scale: Scale) -> ffr_fault::SetDeratingTable {
    let store = artifact_store();
    let setup = mac_setup(scale);
    let key = StoreKey::of(
        setup.cc.netlist(),
        &format!(
            "bench-set-table;scale={};traffic={:?};injections={};seed=2019",
            scale.tag(),
            scale.traffic(),
            scale.injections_per_ff()
        ),
    );
    if let Ok(Some(table)) = store.get::<ffr_fault::SetDeratingTable>(ArtifactKind::SetTable, &key)
    {
        eprintln!("[ffr-bench] SET table served from artifact store ({key})");
        return table;
    }
    let golden = golden_run(&setup);
    let judge = MacJudge::new(setup.extractor.clone(), &golden);
    let campaign =
        ffr_fault::Campaign::with_golden(&setup.cc, &setup.tb, &setup.watch, &judge, golden);
    let config = CampaignConfig::new(setup.tb.injection_window())
        .with_injections(scale.injections_per_ff())
        .with_seed(2019);
    let nets = set_target_nets(scale, &setup.cc);
    eprintln!(
        "[ffr-bench] running SET campaign: {} nets x {} injections...",
        nets.len(),
        config.injections_per_ff
    );
    let t0 = Instant::now();
    let table = campaign.run_set_parallel(&nets, &config, |done, total| {
        if done % 100 == 0 || done == total {
            eprint!("\r[ffr-bench] {done}/{total} nets");
            let _ = std::io::stderr().flush();
        }
    });
    eprintln!("\n[ffr-bench] SET campaign done in {:.1?}", t0.elapsed());
    if let Err(e) = store.put(ArtifactKind::SetTable, &key, &table) {
        eprintln!("[ffr-bench] warning: failed to cache SET table: {e}");
    }
    table
}

/// The paper's learning-curve sweep (fractions of the whole dataset).
pub const LEARNING_CURVE_FRACTIONS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_default() {
        assert_eq!(Scale::Paper.tag(), "paper");
        assert_eq!(Scale::Quick.tag(), "quick");
        assert_eq!(Scale::Quick.injections_per_ff(), 24);
        assert!(
            Scale::Paper.mac_config().fifo_addr_bits >= Scale::Quick.mac_config().fifo_addr_bits
        );
    }

    #[test]
    fn cache_dir_exists() {
        let d = cache_dir();
        assert!(d.exists());
    }
}
