//! Fig. 2 — regression with the Linear Least Squares model.
//!
//! 2a: true vs predicted FDR (train and test splits of an example fold,
//! training size 50 %); 2b: learning curve (train/test R² vs training
//! size, CV = 10).
//!
//! Run: `cargo run --release -p ffr-bench --bin fig2_linear`

use ffr_bench::{load_or_collect_dataset, Scale, LEARNING_CURVE_FRACTIONS};
use ffr_core::{model_learning_curve, prediction_report, ModelKind};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    println!("=== Fig. 2a: prediction on an example fold (training size = 50%) ===");
    let rep = prediction_report(ModelKind::LinearLeastSquares, &ds, 0.5, 2019);
    print!("{rep}");
    println!("\n=== Fig. 2b: learning curve (cross validation fold = 10) ===");
    let curve = model_learning_curve(
        ModelKind::LinearLeastSquares,
        &ds,
        &LEARNING_CURVE_FRACTIONS,
        10,
        2019,
    );
    print!("{curve}");
}
