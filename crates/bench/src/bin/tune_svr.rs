//! §IV-B.3 — hyperparameter search for the SVR model.
//!
//! Reproduces the random + grid search the paper used to find `C = 3.5`,
//! `γ = 0.055`, `ε = 0.025`: a seeded random search over wide log-uniform
//! ranges followed by a grid around the paper's region.
//!
//! Search-time economics: SMO is quadratic-ish in the training size, so
//! the search runs on a 350-sample stratified subsample with a capped
//! iteration budget — the winning region is then validated at full size
//! by `table1`/`fig4_svr`.
//!
//! Run: `cargo run --release -p ffr-bench --bin tune_svr`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::{ModelKind, SvrParams};
use ffr_ml::model_selection::{grid_search, random_search, StratifiedKFold};
use ffr_ml::{Kernel, Regressor, ScaledRegressor, SvrRegressor};
use rand::Rng;

fn tuned(p: &SvrParams) -> Box<dyn Regressor + Send + Sync> {
    Box::new(ScaledRegressor::new(
        SvrRegressor::new(p.c, p.epsilon, Kernel::Rbf { gamma: p.gamma }).with_max_iter(30_000),
    ))
}

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    // Stratified subsample for search speed.
    let max_search = 350usize;
    let all_x = ds.x();
    let y_full = ds.y();
    let (x, y): (Vec<Vec<f64>>, Vec<f64>) = if ds.len() > max_search {
        let mut order: Vec<usize> = (0..ds.len()).collect();
        order.sort_by(|&a, &b| y_full[a].total_cmp(&y_full[b]));
        let stride = ds.len() as f64 / max_search as f64;
        let picks: Vec<usize> = (0..max_search)
            .map(|i| order[(i as f64 * stride) as usize])
            .collect();
        (
            picks.iter().map(|&i| all_x[i].clone()).collect(),
            picks.iter().map(|&i| y_full[i]).collect(),
        )
    } else {
        (all_x.clone(), y_full.to_vec())
    };
    println!("search set: {} samples (stratified subsample)", x.len());
    let folds = StratifiedKFold::new(5, 2019).split(&y);

    println!("\nstage 1: random search (16 draws, log-uniform C/gamma/epsilon)");
    let coarse = random_search(
        16,
        2019,
        |rng| SvrParams {
            c: 10f64.powf(rng.gen_range(-1.0..2.0)),
            gamma: 10f64.powf(rng.gen_range(-3.0..1.0)),
            epsilon: 10f64.powf(rng.gen_range(-3.0..-0.5)),
        },
        tuned,
        &x,
        &y,
        &folds,
    );
    println!(
        "  best random draw: C={:.3} gamma={:.4} eps={:.4} (R2={:.3})",
        coarse.best_params.c,
        coarse.best_params.gamma,
        coarse.best_params.epsilon,
        coarse.best_scores.r2
    );

    println!("\nstage 2: grid search around the paper's region");
    let grid = ModelKind::svr_grid();
    let fine = grid_search(&grid, tuned, &x, &y, &folds);
    let mut rows = fine.evaluated.clone();
    rows.sort_by(|a, b| b.1.r2.total_cmp(&a.1.r2));
    println!("{:>8} {:>8} {:>8} {:>8}", "C", "gamma", "eps", "R2");
    for (p, s) in rows.iter().take(10) {
        println!(
            "{:>8.3} {:>8.4} {:>8.4} {:>8.3}",
            p.c, p.gamma, p.epsilon, s.r2
        );
    }
    println!(
        "\nbest grid point: C={} gamma={} eps={} (paper: C=3.5 gamma=0.055 eps=0.025)",
        fine.best_params.c, fine.best_params.gamma, fine.best_params.epsilon
    );
}
