//! Fig. 4 — regression with the Support Vector Regressor with RBF kernel
//! (C = 3.5, γ = 0.055, ε = 0.025).
//!
//! 4a: true vs predicted FDR on an example fold; 4b: learning curve.
//!
//! Run: `cargo run --release -p ffr-bench --bin fig4_svr`

use ffr_bench::{load_or_collect_dataset, Scale, LEARNING_CURVE_FRACTIONS};
use ffr_core::{model_learning_curve, prediction_report, ModelKind};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    println!("=== Fig. 4a: prediction on an example fold (training size = 50%) ===");
    let rep = prediction_report(ModelKind::SvrRbf, &ds, 0.5, 2019);
    print!("{rep}");
    println!("\n=== Fig. 4b: learning curve (cross validation fold = 10) ===");
    let curve = model_learning_curve(ModelKind::SvrRbf, &ds, &LEARNING_CURVE_FRACTIONS, 10, 2019);
    print!("{curve}");
}
