//! Table I — performance of the three regression models under 10-fold
//! stratified cross-validation at 50 % training size.
//!
//! Run: `cargo run --release -p ffr-bench --bin table1`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::{compare_models, ModelKind};

fn main() {
    let scale = Scale::from_env();
    let ds = load_or_collect_dataset(scale);
    let cmp = compare_models(&ModelKind::PAPER, &ds, 10, 0.5, 2019);
    println!("TABLE I");
    print!("{cmp}");
    println!();
    println!("paper reference (same protocol on the authors' testbed):");
    println!("  Linear Least Squares   MAE 0.165  MAX 0.944  RMSE 0.218  EV 0.520  R2 0.519");
    println!("  k-NN                   MAE 0.050  MAX 0.907  RMSE 0.124  EV 0.843  R2 0.842");
    println!("  SVR w/ RBF Kernel      MAE 0.063  MAX 0.849  RMSE 0.124  EV 0.845  R2 0.844");
}
