//! Extension — per-feature value via permutation importance.
//!
//! The paper's future work: "the value of each feature needs to be
//! evaluated separately". A k-NN model is fitted on half the flip-flops;
//! each feature column of the held-out half is then shuffled repeatedly
//! and the R² drop recorded.
//!
//! Run: `cargo run --release -p ffr-bench --bin feature_importance`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::ModelKind;
use ffr_ml::importance::{permutation_importance, ranked};
use ffr_ml::model_selection::{take, train_test_split};
use ffr_ml::Regressor;

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    let x = ds.x();
    let (train_idx, test_idx) = train_test_split(ds.len(), 0.5, 2019);
    let (tx, ty) = take(&x, ds.y(), &train_idx);
    let (vx, vy) = take(&x, ds.y(), &test_idx);
    let mut model = ModelKind::Knn.build();
    model.fit(&tx, &ty);
    let baseline = ffr_ml::metrics::r2(&vy, &model.predict(&vx));
    println!("k-NN held-out R2 baseline: {baseline:.3}\n");

    let imp = ranked(permutation_importance(&*model, &vx, &vy, 8, 7));
    println!("{:<22} {:>12} {:>10}", "feature", "R2 drop", "stddev");
    for fi in &imp {
        println!(
            "{:<22} {:>12.4} {:>10.4}",
            ds.features.feature_names()[fi.column],
            fi.mean_drop,
            fi.std_drop
        );
    }
    println!("\n(top features are what the model actually uses to predict FDR)");
}
