//! Extension — dimensionality reduction ahead of the regressor.
//!
//! The paper's future work suggests "a dimension reduction should be taken
//! into account in order to avoid the curse of dimensionality". This
//! experiment standardizes the 25 features, projects them onto the top-k
//! principal components and re-evaluates the k-NN model for several k.
//!
//! Run: `cargo run --release -p ffr-bench --bin pca_reduction`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_ml::metrics::RegressionScores;
use ffr_ml::model_selection::{take, StratifiedKFold};
use ffr_ml::{Distance, KnnRegressor, Pca, Regressor, StandardScaler, WeightScheme};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    let x = ds.x();
    let y = ds.y();
    let folds = StratifiedKFold::new(10, 2019).split(y);

    println!(
        "{:>12} {:>14} {:>8} {:>8} {:>8}",
        "components", "var_explained", "MAE", "RMSE", "R2"
    );
    for k in [2usize, 4, 6, 8, 12, 16, 20, 25] {
        let mut fold_scores = Vec::new();
        let mut var_ratio = 0.0;
        for (train, test) in &folds {
            let (tx, ty) = take(&x, y, train);
            let (vx, vy) = take(&x, y, test);
            // Standardize, then project (both fit on train only).
            let mut scaler = StandardScaler::new();
            let tx_s = scaler.fit_transform(&tx);
            let vx_s = scaler.transform(&vx);
            let pca = Pca::fit(&tx_s, k);
            var_ratio = pca.explained_variance_ratio(Pca::total_variance(&tx_s));
            let tx_p = pca.transform(&tx_s);
            let vx_p = pca.transform(&vx_s);
            let mut m = KnnRegressor::new(3, Distance::Manhattan, WeightScheme::InverseDistance);
            m.fit(&tx_p, &ty);
            fold_scores.push(RegressionScores::compute(&vy, &m.predict(&vx_p)));
        }
        let s = RegressionScores::mean(&fold_scores);
        println!(
            "{:>12} {:>13.1}% {:>8.3} {:>8.3} {:>8.3}",
            k,
            var_ratio * 100.0,
            s.mae,
            s.rmse,
            s.r2
        );
    }
    println!("\n(compare the 25-component row with Table I's k-NN row: if fewer");
    println!("components match it, the feature set carries redundancy)");
}
