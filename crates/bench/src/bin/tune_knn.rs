//! §IV-B.2 — hyperparameter search for the k-NN model.
//!
//! Reproduces the random + grid search the paper used to find `k = 3`
//! with the Manhattan distance.
//!
//! Run: `cargo run --release -p ffr-bench --bin tune_knn`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::ModelKind;
use ffr_ml::model_selection::{grid_search, StratifiedKFold};
use ffr_ml::Regressor;

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    let x = ds.x();
    let folds = StratifiedKFold::new(5, 2019).split(ds.y());
    let grid = ModelKind::knn_grid();
    println!(
        "k-NN grid search over {} configurations (CV = 5)",
        grid.len()
    );
    let result = grid_search(
        &grid,
        |p| {
            let m: Box<dyn Regressor + Send + Sync> = Box::new(p.build());
            m
        },
        &x,
        ds.y(),
        &folds,
    );
    println!(
        "\n{:<6} {:<12} {:<18} {:>8}",
        "k", "distance", "weights", "R2"
    );
    let mut rows = result.evaluated.clone();
    rows.sort_by(|a, b| b.1.r2.total_cmp(&a.1.r2));
    for (p, s) in &rows {
        println!(
            "{:<6} {:<12} {:<18} {:>8.3}",
            p.k,
            format!("{:?}", p.distance),
            format!("{:?}", p.weights),
            s.r2
        );
    }
    println!(
        "\nbest: k={} {:?} {:?} (paper: k=3 Manhattan inverse-distance)",
        result.best_params.k, result.best_params.distance, result.best_params.weights
    );
}
