//! Extension — feature-group ablation.
//!
//! The paper's future work calls for evaluating "the value of each
//! feature". This experiment retrains the k-NN model on each feature
//! group (structural / synthesis / dynamic) alone and on all pairwise
//! unions, quantifying what each group contributes.
//!
//! Run: `cargo run --release -p ffr-bench --bin ablation_features`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::{evaluate_model, ModelKind};
use ffr_features::FeatureGroup;

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    let groups: Vec<(&str, Vec<usize>)> = vec![
        (
            "structural only",
            FeatureGroup::Structural.columns().collect(),
        ),
        (
            "synthesis only",
            FeatureGroup::Synthesis.columns().collect(),
        ),
        ("dynamic only", FeatureGroup::Dynamic.columns().collect()),
        (
            "structural + synthesis",
            FeatureGroup::Structural
                .columns()
                .chain(FeatureGroup::Synthesis.columns())
                .collect(),
        ),
        (
            "structural + dynamic",
            FeatureGroup::Structural
                .columns()
                .chain(FeatureGroup::Dynamic.columns())
                .collect(),
        ),
        (
            "synthesis + dynamic",
            FeatureGroup::Synthesis
                .columns()
                .chain(FeatureGroup::Dynamic.columns())
                .collect(),
        ),
        ("all features", (0..ds.features.num_cols()).collect()),
    ];

    println!("Feature-group ablation (k-NN, CV = 10, training size = 50 %)");
    println!(
        "{:<26} {:>6} {:>8} {:>8} {:>8}",
        "feature set", "cols", "MAE", "RMSE", "R2"
    );
    for (name, cols) in groups {
        let sub = ds.with_columns(&cols);
        let s = evaluate_model(ModelKind::Knn, &sub, 10, 0.5, 2019);
        println!(
            "{:<26} {:>6} {:>8.3} {:>8.3} {:>8.3}",
            name,
            cols.len(),
            s.mae,
            s.rmse,
            s.r2
        );
    }
}
