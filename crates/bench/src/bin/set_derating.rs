//! SET extension — combinational-net transient campaign and the combined
//! soft-error estimate.
//!
//! Runs the resumable-engine SET campaign over the MAC's combinational
//! nets (cached in the artifact store), the ML-assisted SEU estimation
//! flow, and folds both into a circuit-level functional failure rate via
//! [`SoftErrorEstimate`] — the cross-layer picture the follow-up work
//! needs on top of the paper's SEU-only evaluation.
//!
//! Run: `cargo run --release -p ffr-bench --bin set_derating`
//! (`FFR_SCALE=quick` for a smoke run).

use ffr_bench::{golden_run, load_or_run_set_table, mac_setup, Scale};
use ffr_circuits::MacJudge;
use ffr_core::{EstimationFlow, FlowConfig, ModelKind, RawEventRates, SoftErrorEstimate};

fn main() {
    let scale = Scale::from_env();
    let setup = mac_setup(scale);

    // SET side: per-net logical de-rating from the unified engine.
    let set_table = load_or_run_set_table(scale);
    let set_population = setup.cc.comb_output_nets().len();
    println!("=== SET logical de-rating ===");
    println!(
        "nets covered: {} of {} combinational   injections/net: {}",
        set_table.num_nets(),
        set_population,
        set_table.injections_per_net()
    );
    println!(
        "circuit-level SET de-rating: {:.4}",
        set_table.circuit_derating()
    );
    let masked = set_table.covered().filter(|r| r.derating() == 0.0).count();
    println!("fully masked nets: {masked}/{}", set_table.num_nets());
    println!("\nde-rating histogram (10 bins):");
    print!("{}", set_table.histogram(10));

    // SEU side: inject a training fraction, predict the rest.
    let golden = golden_run(&setup);
    let judge = MacJudge::new(setup.extractor.clone(), &golden);
    let flow = EstimationFlow::with_golden(&setup.cc, &setup.tb, &setup.watch, &judge, golden);
    let config = FlowConfig {
        training_fraction: 0.3,
        injections_per_ff: scale.injections_per_ff(),
        window: setup.tb.injection_window(),
        seed: 2019,
    };
    let estimation = flow.estimate(ModelKind::Knn, &config);
    println!("\n=== SEU estimation flow (30% trained, k-NN) ===");
    println!("circuit-level FDR: {:.4}", estimation.circuit_fdr());

    // Combined: generic per-site raw rates (unit: arbitrary, e.g. FIT).
    // Quick scale subsamples the SET nets, so extrapolate the covered
    // mean to the full combinational-net population — otherwise the SET
    // contribution would be undercounted by the sampling factor.
    let rates = RawEventRates {
        seu_per_ff: 1.0,
        set_per_net: 0.1,
    };
    let combined =
        SoftErrorEstimate::from_estimation_sampled(&estimation, &set_table, &rates, set_population);
    println!("\n=== Combined soft-error estimate (λ_SEU=1, λ_SET=0.1 per site) ===");
    println!("SEU contribution: {:.2}", combined.seu_failure_rate);
    println!("SET contribution: {:.2}", combined.set_failure_rate);
    println!(
        "total FFR: {:.2}   (SET share: {:.1}%)",
        combined.total(),
        100.0 * combined.set_share()
    );
}
