//! Conclusion — campaign cost-reduction analysis (the 2×–5× claim).
//!
//! Turns the k-NN and SVR learning curves into the paper's headline
//! numbers: the training size at which accuracy saturates (→ 2× cheaper
//! campaigns at 50 %) and the largest reduction within a <10 % accuracy
//! loss (→ up to 5×).
//!
//! Run: `cargo run --release -p ffr-bench --bin savings`

use ffr_bench::{load_or_collect_dataset, Scale, LEARNING_CURVE_FRACTIONS};
use ffr_core::savings::{max_cost_reduction, render, savings_table};
use ffr_core::{model_learning_curve, ModelKind};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    for kind in [ModelKind::Knn, ModelKind::SvrRbf] {
        println!("=== {kind} ===");
        let curve = model_learning_curve(kind, &ds, &LEARNING_CURVE_FRACTIONS, 10, 2019);
        let table = savings_table(&curve.points);
        print!("{}", render(&table));
        if let Some(best_tight) = max_cost_reduction(&curve.points, 0.02) {
            println!(
                "cost reduction at <2% R2 loss:  {:.1}x (train on {:.0}% of FFs)",
                best_tight.cost_reduction,
                best_tight.train_fraction * 100.0
            );
        }
        if let Some(best_loose) = max_cost_reduction(&curve.points, 0.10) {
            println!(
                "cost reduction at <10% R2 loss: {:.1}x (train on {:.0}% of FFs)",
                best_loose.cost_reduction,
                best_loose.train_fraction * 100.0
            );
        }
        println!();
    }
    println!("paper: training sizes of 20%-50% provide appropriate performance,");
    println!("i.e. classical campaign cost reduced 2x to 5x.");
}
