//! Extension ("Table II") — the paper's future-work models evaluated under
//! the identical protocol as Table I: ridge, decision tree, random forest,
//! gradient boosting and an MLP, next to the original three.
//!
//! Run: `cargo run --release -p ffr-bench --bin table2_extended`

use ffr_bench::{load_or_collect_dataset, Scale};
use ffr_core::{compare_models, ModelKind};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    let cmp = compare_models(&ModelKind::ALL, &ds, 10, 0.5, 2019);
    println!("TABLE II (extension): all models, CV = 10, training size = 50 %");
    print!("{cmp}");
    let best = cmp
        .rows
        .iter()
        .max_by(|a, b| a.1.r2.total_cmp(&b.1.r2))
        .expect("non-empty");
    println!("\nbest model by R2: {} ({:.3})", best.0, best.1.r2);
}
