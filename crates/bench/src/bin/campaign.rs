//! §IV-A — the flat statistical fault-injection campaign.
//!
//! Reproduces the paper's reference data generation: for each flip-flop of
//! the MAC, `injections_per_ff` SEUs at random active-phase cycles, each
//! run classified as functional failure or benign. Prints the campaign
//! summary, failure-class totals and the FDR histogram.
//!
//! Run: `cargo run --release -p ffr-bench --bin campaign`
//! (`FFR_SCALE=quick` for a smoke run).

use ffr_bench::{load_or_collect_dataset, mac_setup, Scale};
use ffr_netlist::NetlistStats;
use ffr_sim::Stimulus;

fn main() {
    let scale = Scale::from_env();
    let setup = mac_setup(scale);
    println!("=== Design under test ===");
    println!("{}", NetlistStats::of(setup.cc.netlist()));
    println!(
        "testbench: {} cycles, injection window {:?}",
        setup.tb.num_cycles(),
        setup.tb.injection_window()
    );
    println!("packets sent: {}", setup.tb.sent_packets().len());

    let ds = load_or_collect_dataset(scale);
    println!("\n=== Flat statistical fault-injection campaign ===");
    println!(
        "flip-flops: {}   injections/FF: {}   total injections: {}",
        ds.len(),
        ds.injections_per_ff,
        ds.len() * ds.injections_per_ff
    );
    let mean = ds.y().iter().sum::<f64>() / ds.len() as f64;
    println!("circuit-level FDR (mean over FFs): {mean:.4}");
    let zeros = ds.y().iter().filter(|&&v| v == 0.0).count();
    let ones = ds.y().iter().filter(|&&v| v >= 0.999).count();
    println!("fully benign FFs: {zeros}   always-failing FFs: {ones}");

    println!("\nFDR histogram (10 bins):");
    let hist = ffr_fault::FdrHistogram::of(ds.y().iter().copied(), 10);
    print!("{hist}");
}
