//! The fixed-170 vs Wilson-CI accuracy-vs-cost sweep.
//!
//! Runs the policy × budget grid of [`ffr_bench::policy_study`] on
//! `mac-small` (and, at paper scale, on the paper-scale MAC), emits the
//! versioned `policy-study.json` store artifact plus a plain copy under
//! `target/policy-study/`, and regenerates `docs/policy-study.md` from
//! the `mac-small` study — the README's headline accuracy-vs-cost table.
//!
//! The `mac-small` sweep is scale-independent and fully deterministic
//! (fixed seeds, store-cached campaigns), so the committed markdown can
//! be re-rendered and compared by CI:
//!
//! ```text
//! cargo run --release -p ffr-bench --bin policy_study            # regenerate
//! cargo run --release -p ffr-bench --bin policy_study -- --check # CI drift gate
//! cargo run --release -p ffr-bench --bin policy_study -- --force # recompute
//! FFR_SCALE=paper cargo run --release -p ffr-bench --bin policy_study
//! ```
//!
//! At paper scale the additional `mac` study prints to stdout and lands
//! in the artifact store only — `docs/policy-study.md` always holds the
//! CI-reproducible `mac-small` table.

use ffr_bench::policy_study::{render_markdown, run_study, PolicyStudy, StudyConfig};
use ffr_bench::Scale;
use ffr_core::savings::{policy_cost_table, render_policy_table};
use std::path::PathBuf;
use std::process::ExitCode;

/// Repo-relative path of the generated markdown.
fn docs_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/policy-study.md")
}

/// Where the plain-JSON copy of the studies goes.
fn json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/policy-study/policy-study.json")
}

/// Console summary of a study through the core savings fold-in.
fn print_summary(study: &PolicyStudy) {
    println!(
        "=== {} ({} FFs, reference {} @ {} injections, FFR {:.4}) ===",
        study.circuit,
        study.total_ffs,
        study.reference_policy,
        study.reference_injections,
        study.reference_ffr
    );
    let full_budget: Vec<(&str, usize, f64)> = study
        .rows
        .iter()
        .filter(|r| r.budget >= 1.0)
        .map(|r| (r.policy.as_str(), r.injections, r.ffr_delta))
        .collect();
    print!(
        "{}",
        render_policy_table(&policy_cost_table(study.reference_injections, full_budget))
    );
    for row in study.rows.iter().filter(|r| r.budget < 1.0) {
        if let Some(est) = &row.estimate {
            println!(
                "  {} @ {:.0} % budget → {} injections, ML flow ({}) FFR {:.4} ({:+.4})",
                row.policy,
                row.budget * 100.0,
                row.injections,
                est.best_model,
                est.circuit_ffr,
                est.ffr_delta
            );
        }
    }
    if let Some(headline) = study.headline(ffr_bench::policy_study::HEADLINE_FFR_TOLERANCE) {
        println!(
            "headline: {} saves {:.1} % of injections at |dFFR| {:.4}",
            headline.policy,
            headline.saved_vs_reference * 100.0,
            headline.ffr_delta.abs()
        );
    }
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let force = args.iter().any(|a| a == "--force");
    if let Some(unknown) = args
        .iter()
        .find(|a| a.as_str() != "--check" && a.as_str() != "--force")
    {
        eprintln!("unknown option `{unknown}` (supported: --check, --force)");
        return ExitCode::from(64);
    }

    // The mac-small study drives the docs and is scale-independent.
    let mut config = StudyConfig::new("mac-small");
    config.force = force;
    let small = match run_study(&config) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("policy study failed: {e}");
            return ExitCode::from(1);
        }
    };
    print_summary(&small);
    let rendered = render_markdown(&small);

    if check {
        let committed = match std::fs::read_to_string(docs_path()) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "--check: cannot read {} ({e}); generate it first with \
                     `cargo run --release -p ffr-bench --bin policy_study`",
                    docs_path().display()
                );
                return ExitCode::from(1);
            }
        };
        if committed == rendered {
            println!("docs/policy-study.md is up to date");
            return ExitCode::SUCCESS;
        }
        eprintln!("docs/policy-study.md is stale: the committed table differs from the");
        eprintln!("one the code generates. First differing line:");
        for (i, (a, b)) in committed.lines().zip(rendered.lines()).enumerate() {
            if a != b {
                eprintln!("  line {}:", i + 1);
                eprintln!("  - {a}");
                eprintln!("  + {b}");
                break;
            }
        }
        if committed.lines().count() != rendered.lines().count() {
            eprintln!(
                "  (line counts differ: {} committed vs {} generated)",
                committed.lines().count(),
                rendered.lines().count()
            );
        }
        eprintln!("Regenerate with `cargo run --release -p ffr-bench --bin policy_study`.");
        return ExitCode::from(1);
    }

    let mut studies = vec![small];
    if Scale::from_env() == Scale::Paper {
        // The paper-scale MAC sweep: store artifact + stdout only.
        let mut config = StudyConfig::new("mac");
        config.force = force;
        match run_study(&config) {
            Ok(study) => {
                print_summary(&study);
                studies.push(study);
            }
            Err(e) => {
                eprintln!("paper-scale policy study failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let json = json_path();
    if let Some(parent) = json.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let doc = serde_json::to_string_pretty(&studies).expect("studies serialize");
    if let Err(e) = std::fs::write(&json, &doc) {
        eprintln!("failed to write {}: {e}", json.display());
        return ExitCode::from(1);
    }
    println!("policy-study.json written to {}", json.display());

    let docs = docs_path();
    if let Some(parent) = docs.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&docs, &rendered) {
        eprintln!("failed to write {}: {e}", docs.display());
        return ExitCode::from(1);
    }
    println!("docs/policy-study.md regenerated ({})", docs.display());
    ExitCode::SUCCESS
}
