//! The committed performance trajectory: `BENCH_sim.json` and
//! `BENCH_campaign.json` at the repository root.
//!
//! The vendored criterion stub prints human-readable timings only, so
//! this binary times the two load-bearing workloads itself and snapshots
//! the medians:
//!
//! * **`BENCH_sim.json`** — gate-level simulator throughput on the small
//!   MAC (plain `eval` and deep-net `eval_forced_site`, in million
//!   compiled ops per second) — the substrate cost under every
//!   fault-injection number;
//! * **`BENCH_campaign.json`** — end-to-end `mac-small` campaign
//!   injection throughput, read back from the campaign's **telemetry
//!   logs** (the same `injections / phase.measure` arithmetic as
//!   `ffr stats`), so the committed number and the live `ffr stats`
//!   report can never use different definitions.
//!
//! ```text
//! cargo run --release -p ffr-bench --bin bench_snapshot             # refresh
//! cargo run --release -p ffr-bench --bin bench_snapshot -- --check  # CI gate
//! ```
//!
//! `--check` recomputes the metrics and fails only on a **slowdown**
//! beyond the tolerance (default 15 %; override with
//! `FFR_BENCH_TOLERANCE=0.30`). Speedups never fail the gate — refresh
//! the snapshots when one is worth committing. `FFR_BENCH_SAMPLES` sets
//! the sample count (default 5; the median is snapshotted).

use ffr_campaign::{
    session, AdaptivePolicy, CampaignStats, CancelToken, RunRequest, RunnerOptions,
};
use ffr_circuits::{Mac10ge, Mac10geConfig, MacTestbench, TrafficConfig};
use ffr_netlist::FfId;
use ffr_sim::{CompiledCircuit, FrontierScratch, NetJournal, SimState, Stimulus};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Snapshot schema version (bumped on incompatible shape changes).
/// v2: added `cone_eval_mops_per_sec` to `BENCH_sim.json`.
/// v3: added `frontier_eval_mops_per_sec` to `BENCH_sim.json`; `--check`
/// now also rejects schema drift and stale committed metrics.
const SCHEMA_VERSION: u64 = 3;

/// Default slowdown tolerance of `--check` (fraction of the committed
/// value).
const DEFAULT_TOLERANCE: f64 = 0.15;

fn repo_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn samples() -> usize {
    std::env::var("FFR_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(5)
}

fn tolerance() -> f64 {
    std::env::var("FFR_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|t: &f64| t.is_finite() && *t > 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite medians"));
    values[values.len() / 2]
}

/// Median over `samples()` timed runs of `workload`, with one discarded
/// warmup (mirroring the vendored criterion harness).
fn measure(mut workload: impl FnMut() -> f64) -> f64 {
    let n = samples();
    let mut values = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        values.push(workload());
    }
    values.remove(0);
    median(values)
}

/// Simulator throughput metrics on the small MAC (million compiled ops
/// per second), matching the `sim_throughput` / `forced_eval` benches.
fn sim_metrics() -> Vec<(String, f64)> {
    let mac = Mac10ge::build(Mac10geConfig::small());
    let cc = CompiledCircuit::compile(mac.into_netlist()).expect("small MAC compiles");
    let cycles: u64 = 10_000;
    let ops = cc.num_ops() as f64 * cycles as f64;

    let plain = measure(|| {
        let mut state = SimState::new(&cc);
        let t0 = Instant::now();
        for _ in 0..cycles {
            state.eval(&cc);
            state.tick(&cc);
        }
        std::hint::black_box(state.cycle());
        ops / t0.elapsed().as_secs_f64() / 1e6
    });

    let deep = *cc
        .comb_output_nets()
        .iter()
        .max_by_key(|&&n| cc.net_level(n))
        .expect("MAC has combinational nets");
    let site = cc.fault_site(deep);
    let forced = measure(|| {
        let mut state = SimState::new(&cc);
        let t0 = Instant::now();
        for _ in 0..cycles {
            state.eval_forced_site(&cc, site, 0xAAAA_5555_AAAA_5555);
            state.tick(&cc);
        }
        std::hint::black_box(state.cycle());
        ops / t0.elapsed().as_secs_f64() / 1e6
    });

    // Cone-restricted campaign inner loop on the largest SEU cone — the
    // worst case the cone path ever evaluates (matching the `cone_eval`
    // bench). Throughput is counted in *cone* ops, so the number is
    // comparable to the full-eval metrics per op actually executed.
    let largest = (0..cc.num_ffs())
        .max_by_key(|&i| cc.ff_cone(FfId::from_index(i)).num_ops())
        .expect("MAC has flip-flops");
    let cone = cc.ff_cone(FfId::from_index(largest));
    let cone_ops = cone.num_ops() as f64 * cycles as f64;
    let boundary_row = vec![0u64; cc.netlist().num_nets().div_ceil(64)];
    let cone_eval = measure(|| {
        let mut state = SimState::new(&cc);
        let t0 = Instant::now();
        for _ in 0..cycles {
            state.load_boundary(&cone, &boundary_row);
            state.eval_cone(&cone);
            state.tick_cone(&cone);
        }
        std::hint::black_box(state.cycle());
        cone_ops / t0.elapsed().as_secs_f64() / 1e6
    });

    // Event-driven frontier on the same worst-case cone, over the real
    // mac-small testbench journal with a real all-lanes SEU injection
    // (matching the `frontier_eval` bench). Throughput is counted in
    // cone-op *equivalents* — the ops the static cone path would have run
    // over the same window — so the number is directly comparable to
    // `cone_eval_mops_per_sec`: the ratio is the event-driven win.
    let (tcc, tb, _watch, _extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let netj = NetJournal::capture(&tcc, &tb);
    let flargest = (0..tcc.num_ffs())
        .max_by_key(|&i| tcc.ff_cone(FfId::from_index(i)).num_ops())
        .expect("MAC has flip-flops");
    let fcone = tcc.ff_cone(FfId::from_index(flargest));
    let t0 = tb.injection_window().start;
    let endc = tb.num_cycles();
    let equiv_ops = fcone.num_ops() as f64 * (endc - t0) as f64;
    let frontier_eval = measure(|| {
        let mut state = SimState::new(&tcc);
        let mut fs = FrontierScratch::new();
        fs.attach(&fcone);
        state.set_cycle(t0);
        let timer = Instant::now();
        for cycle in t0..endc {
            let row = netj.row(cycle);
            if cycle == t0 {
                state.flip_frontier(&fcone, &mut fs, row, !0u64);
            }
            state.eval_frontier(&fcone, &mut fs, row);
            let next = cycle + 1;
            state.tick_frontier(
                &fcone,
                &mut fs,
                if next < endc {
                    Some(netj.row(next))
                } else {
                    None
                },
            );
        }
        std::hint::black_box(fs.ops_evaluated());
        equiv_ops / timer.elapsed().as_secs_f64() / 1e6
    });

    vec![
        ("sim_eval_mops_per_sec".to_string(), plain),
        ("forced_eval_mops_per_sec".to_string(), forced),
        ("cone_eval_mops_per_sec".to_string(), cone_eval),
        ("frontier_eval_mops_per_sec".to_string(), frontier_eval),
    ]
}

/// End-to-end `mac-small` campaign throughput (injections per
/// worker-second), read back from the run's telemetry logs.
fn campaign_metrics() -> Result<Vec<(String, f64)>, String> {
    let out = std::env::temp_dir().join(format!("ffr_bench_snapshot_{}", std::process::id()));
    let mut rates = Vec::new();
    for round in 0..=samples() {
        let dir = out.join(format!("round{round}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut request = RunRequest::new("mac-small".parse()?);
        request.policy = AdaptivePolicy::fixed(24);
        session::run(
            &request,
            &dir,
            &RunnerOptions::default(),
            &CancelToken::new(),
            |_, _| {},
        )
        .map_err(|e| e.to_string())?;
        let stats = CampaignStats::from_session(&dir).map_err(|e| e.to_string())?;
        rates.push(
            stats
                .injections_per_sec()
                .ok_or("campaign produced no telemetry (is FFR_TELEMETRY=0 set?)")?,
        );
    }
    let _ = std::fs::remove_dir_all(&out);
    rates.remove(0);
    Ok(vec![(
        "mac_small_injections_per_sec".to_string(),
        median(rates),
    )])
}

fn render_snapshot(metrics: &[(String, f64)]) -> String {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let doc = Value::Object(vec![
        ("schema_version".to_string(), Value::U64(SCHEMA_VERSION)),
        (
            "metrics".to_string(),
            Value::Object(
                metrics
                    .iter()
                    .map(|(name, v)| (name.clone(), Value::F64((v * 10.0).round() / 10.0)))
                    .collect(),
            ),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&Raw(doc)).expect("snapshot serializes");
    text.push('\n');
    text
}

fn committed_metric(file: &str, doc: &Value, name: &str) -> Result<f64, String> {
    match doc.get("metrics").and_then(|m| m.get(name)) {
        Some(Value::F64(v)) => Ok(*v),
        Some(Value::U64(v)) => Ok(*v as f64),
        _ => Err(format!(
            "{file} has no metric `{name}` — regenerate with \
             `cargo run --release -p ffr-bench --bin bench_snapshot`"
        )),
    }
}

/// Compare fresh metrics against a committed snapshot; returns the number
/// of metrics that regressed beyond the tolerance.
///
/// Besides per-metric slowdowns, the check fails loudly on any *shape*
/// drift between the binary and the committed file: a schema_version
/// mismatch, a fresh metric the committed file lacks (a newly added
/// metric must be committed, not silently skipped) and a committed
/// metric the binary no longer emits (a stale snapshot gates nothing).
fn check_file(file: &str, metrics: &[(String, f64)]) -> Result<usize, String> {
    let path = repo_path(file);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "--check: cannot read {} ({e}); generate it first with \
             `cargo run --release -p ffr-bench --bin bench_snapshot`",
            path.display()
        )
    })?;
    let doc = serde_json::parse_value_complete(&text).map_err(|e| format!("{file}: {e}"))?;
    match doc.get("schema_version") {
        Some(Value::U64(v)) if *v == SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "{file} has schema_version {other:?}, this binary expects {SCHEMA_VERSION} — \
                 regenerate with `cargo run --release -p ffr-bench --bin bench_snapshot`"
            ))
        }
    }
    if let Some(Value::Object(committed)) = doc.get("metrics") {
        for (name, _) in committed {
            if !metrics.iter().any(|(fresh, _)| fresh == name) {
                return Err(format!(
                    "{file} carries stale metric `{name}` this binary no longer measures — \
                     regenerate with `cargo run --release -p ffr-bench --bin bench_snapshot`"
                ));
            }
        }
    }
    let tol = tolerance();
    let mut regressions = 0;
    for (name, current) in metrics {
        let committed = committed_metric(file, &doc, name)?;
        let floor = committed * (1.0 - tol);
        let verdict = if *current < floor {
            regressions += 1;
            "REGRESSED"
        } else if *current > committed * (1.0 + tol) {
            "faster (consider refreshing the snapshot)"
        } else {
            "ok"
        };
        println!(
            "{file}: {name} = {current:.1} vs committed {committed:.1} \
             (floor {floor:.1}, -{:.0} %): {verdict}",
            tol * 100.0
        );
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    if let Some(unknown) = args.iter().find(|a| a.as_str() != "--check") {
        eprintln!("unknown option `{unknown}` (supported: --check)");
        return ExitCode::from(64);
    }

    let sim = sim_metrics();
    let campaign = match campaign_metrics() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("campaign snapshot failed: {e}");
            return ExitCode::from(1);
        }
    };

    if check {
        let mut regressions = 0;
        for (file, metrics) in [("BENCH_sim.json", &sim), ("BENCH_campaign.json", &campaign)] {
            match check_file(file, metrics) {
                Ok(n) => regressions += n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(1);
                }
            }
        }
        if regressions > 0 {
            eprintln!(
                "{regressions} metric(s) regressed beyond the {:.0} % tolerance; \
                 investigate, or refresh with \
                 `cargo run --release -p ffr-bench --bin bench_snapshot` \
                 if the slowdown is intended",
                tolerance() * 100.0
            );
            return ExitCode::from(1);
        }
        println!("perf snapshots are within tolerance");
        return ExitCode::SUCCESS;
    }

    for (file, metrics) in [("BENCH_sim.json", &sim), ("BENCH_campaign.json", &campaign)] {
        let path = repo_path(file);
        if let Err(e) = std::fs::write(&path, render_snapshot(metrics)) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        for (name, v) in metrics.iter() {
            println!("{file}: {name} = {v:.1}");
        }
    }
    println!("perf snapshots refreshed (commit BENCH_sim.json / BENCH_campaign.json)");
    ExitCode::SUCCESS
}
