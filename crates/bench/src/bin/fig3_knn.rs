//! Fig. 3 — regression with the k-Nearest Neighbors model (k = 3,
//! Manhattan distance, inverse-distance weights).
//!
//! 3a: true vs predicted FDR on an example fold; 3b: learning curve.
//!
//! Run: `cargo run --release -p ffr-bench --bin fig3_knn`

use ffr_bench::{load_or_collect_dataset, Scale, LEARNING_CURVE_FRACTIONS};
use ffr_core::{model_learning_curve, prediction_report, ModelKind};

fn main() {
    let ds = load_or_collect_dataset(Scale::from_env());
    println!("=== Fig. 3a: prediction on an example fold (training size = 50%) ===");
    let rep = prediction_report(ModelKind::Knn, &ds, 0.5, 2019);
    print!("{rep}");
    println!("\n=== Fig. 3b: learning curve (cross validation fold = 10) ===");
    let curve = model_learning_curve(ModelKind::Knn, &ds, &LEARNING_CURVE_FRACTIONS, 10, 2019);
    print!("{curve}");
}
