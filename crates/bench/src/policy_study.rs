//! The policy accuracy-vs-cost study: fixed-170 vs Wilson-CI stopping.
//!
//! The paper sizes every flip-flop's campaign at a fixed 170 SEUs
//! (Leveugle et al.'s formula); the campaign runner additionally supports
//! per-flip-flop Wilson-CI early stopping (`--policy wilson:…`). This
//! module quantifies what that adaptivity buys: it sweeps a grid of
//! stopping policies × measurement budgets over a circuit, always against
//! the paper-faithful `fixed:170` full-budget reference, and records for
//! every cell
//!
//! * the injections spent (and the saving vs the reference),
//! * the per-flip-flop FDR error against the reference table,
//! * the circuit-FFR deviation,
//! * and — for budgeted cells — the accuracy of the full ML flow
//!   (`ffr estimate`) when that policy's partial table feeds it.
//!
//! Every campaign runs through [`ffr_campaign::session`], so tables are
//! served from the shared artifact store on reruns, and the finished
//! study is itself a versioned store artifact
//! ([`ArtifactKind::PolicyStudy`]): rerunning the study bin reproduces
//! `policy-study.json` **byte-identically** (wall-clock timings are
//! recorded once, when the study is first computed, and cached with it).
//!
//! The quick-scale `mac-small` study renders to `docs/policy-study.md`
//! ([`render_markdown`]); the wall-time column stays out of the markdown
//! so the committed table is machine-independent and CI can re-render and
//! diff it (`policy_study --check`).

use crate::{artifact_store, cache_dir};
use ffr_campaign::{
    estimate_session, ArtifactKind, CancelToken, CircuitSpec, EstimateOptions, RunRequest,
    RunnerOptions, StoreKey,
};
use ffr_fault::{FaultKind, FdrTable};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// Study format version; bump on breaking shape changes.
pub const STUDY_VERSION: u32 = 1;

/// The default policy grid, in canonical spec notation. The first entry
/// is the reference (the paper's fixed-170 rule); `fixed:64` shows what
/// naive budget cutting costs, and the Wilson rows trade confidence
/// against cost in both directions.
pub const STUDY_POLICIES: [&str; 5] = [
    "fixed:170",
    "fixed:64",
    "wilson:0.1@95:64..170",
    "wilson:0.05@95:64..170",
    "wilson:0.02@99:64..340",
];

/// The default measurement-budget grid: the full campaign, and the
/// README's 40 % ML-assisted flow.
pub const STUDY_BUDGETS: [f64; 2] = [1.0, 0.4];

/// |ΔFFR| tolerance of the advertised headline cell. Deliberately tight:
/// the headline is the policy the README recommends, so it must land
/// essentially on the reference FFR, not merely inside the acceptance
/// envelope.
pub const HEADLINE_FFR_TOLERANCE: f64 = 0.01;

/// Parameters of one policy study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Circuit under study (parsed by [`CircuitSpec`]).
    pub circuit: String,
    /// Policy specs to sweep; index 0 is the reference policy.
    pub policies: Vec<String>,
    /// Measurement budgets to sweep (must contain 1.0 for the reference).
    pub budgets: Vec<f64>,
    /// Campaign master seed.
    pub seed: u64,
    /// Stimulus seed.
    pub stim_seed: u64,
    /// Testbench cycles for generic circuits (MACs derive their own).
    pub cycles: u64,
    /// Recompute even if the study artifact is cached.
    pub force: bool,
}

impl StudyConfig {
    /// The default sweep for a circuit: [`STUDY_POLICIES`] ×
    /// [`STUDY_BUDGETS`], the workspace-wide 2019 seed.
    pub fn new(circuit: impl Into<String>) -> StudyConfig {
        StudyConfig {
            circuit: circuit.into(),
            policies: STUDY_POLICIES.iter().map(|s| s.to_string()).collect(),
            budgets: STUDY_BUDGETS.to_vec(),
            seed: 2019,
            stim_seed: 1,
            cycles: 400,
            force: false,
        }
    }
}

/// ML-flow accuracy of one budgeted cell: what `ffr estimate` makes of
/// the policy's partial FDR table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyEstimate {
    /// CV-winning model (CLI token).
    pub best_model: String,
    /// The winner's cross-validated R².
    pub cv_r2: f64,
    /// Estimated circuit FFR (measured + predicted flip-flops).
    pub circuit_ffr: f64,
    /// Signed deviation from the reference circuit FFR.
    pub ffr_delta: f64,
    /// Mean |ΔFDR| of the estimate vs the reference, over **all**
    /// flip-flops.
    pub mean_abs_fdr_error: f64,
}

/// One (policy, budget) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRow {
    /// Canonical policy spec.
    pub policy: String,
    /// Measurement budget (fraction of flip-flops fault-injected).
    pub budget: f64,
    /// Campaign fingerprint (distinct per policy and budget).
    pub fingerprint: String,
    /// Flip-flops measured under this budget.
    pub measured_ffs: usize,
    /// Injections the campaign spent.
    pub injections: usize,
    /// Fraction of the reference campaign's injections saved (negative
    /// when the policy spends more than fixed-170).
    pub saved_vs_reference: f64,
    /// Wall time of the campaign when this study was first computed, in
    /// milliseconds (informational; cached runs record the cache-serve
    /// time, so only cold-study numbers are meaningful).
    pub wall_ms: u64,
    /// Mean |ΔFDR| vs the reference table, over the measured flip-flops.
    pub mean_abs_fdr_error: f64,
    /// Max |ΔFDR| vs the reference table, over the measured flip-flops.
    pub max_abs_fdr_error: f64,
    /// Circuit FFR (mean FDR over the measured flip-flops).
    pub circuit_ffr: f64,
    /// Signed deviation from the reference circuit FFR.
    pub ffr_delta: f64,
    /// ML-flow results for budgeted cells (`None` at full budget).
    pub estimate: Option<StudyEstimate>,
}

/// A finished policy study (the `policy-study.json` document).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyStudy {
    /// Format version ([`STUDY_VERSION`]).
    pub version: u32,
    /// Circuit spec string.
    pub circuit: String,
    /// Flip-flops in the circuit.
    pub total_ffs: usize,
    /// The reference policy (first of the grid, at full budget).
    pub reference_policy: String,
    /// Reference campaign fingerprint.
    pub reference_fingerprint: String,
    /// Injections the reference campaign spent.
    pub reference_injections: usize,
    /// Reference circuit FFR.
    pub reference_ffr: f64,
    /// One row per (policy, budget) cell, in grid order.
    pub rows: Vec<StudyRow>,
}

impl PolicyStudy {
    /// The full-budget row of the given policy, if the grid has one.
    pub fn full_budget_row(&self, policy: &str) -> Option<&StudyRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.budget >= 1.0)
    }

    /// The headline cell: among full-budget **Wilson-CI** rows that save
    /// injections and stay within `ffr_tolerance` of the reference FFR,
    /// the one saving the most. Restricted to the Wilson family because
    /// only those rows carry a per-flip-flop confidence guarantee — a
    /// cheaper fixed cut can land near the reference FFR by luck, with
    /// nothing bounding its per-flip-flop error.
    pub fn headline(&self, ffr_tolerance: f64) -> Option<&StudyRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.budget >= 1.0
                    && r.policy.starts_with("wilson:")
                    && r.saved_vs_reference > 0.0
                    && r.ffr_delta.abs() <= ffr_tolerance
            })
            .max_by(|a, b| a.saved_vs_reference.total_cmp(&b.saved_vs_reference))
    }
}

/// Where the study keeps its campaign session directories.
fn sessions_dir() -> PathBuf {
    cache_dir().join("policy-study-sessions")
}

/// The `RunRequest` of one study cell.
fn cell_request(config: &StudyConfig, policy: &str, budget: f64) -> io::Result<RunRequest> {
    let circuit: CircuitSpec = config.circuit.parse().map_err(io::Error::other)?;
    let mut request = RunRequest::new(circuit);
    request.fault = FaultKind::Seu;
    request.policy = policy.parse().map_err(io::Error::other)?;
    request.budget = budget;
    request.seed = config.seed;
    request.stim_seed = config.stim_seed;
    request.cycles = config.cycles;
    request.store = Some(cache_dir());
    Ok(request)
}

/// Run one cell's campaign (store-cached) and return its partial FDR
/// table, fingerprint and wall time.
fn run_cell(request: &RunRequest) -> io::Result<(FdrTable, String, u64)> {
    let prepared = request.circuit.prepare(request.stim_seed, request.cycles);
    let fingerprint = ffr_campaign::session::campaign_table_key(request, &prepared).to_string();
    let out_dir = sessions_dir().join(format!("{}-{fingerprint}", request.circuit));
    let t0 = Instant::now();
    let summary = ffr_campaign::session::run(
        request,
        &out_dir,
        &RunnerOptions::default(),
        &CancelToken::new(),
        |_, _| {},
    )?;
    let wall_ms = t0.elapsed().as_millis() as u64;
    let table_path = summary
        .table_path
        .ok_or_else(|| io::Error::other("study campaign did not complete"))?;
    Ok((FdrTable::load_json(&table_path)?, fingerprint, wall_ms))
}

/// Mean and max |ΔFDR| of `table`'s measured flip-flops vs `reference`.
fn fdr_errors(table: &FdrTable, reference: &FdrTable) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    for row in table.covered() {
        if let Some(ref_fdr) = reference.fdr(row.ff()) {
            let err = (row.fdr() - ref_fdr).abs();
            sum += err;
            max = max.max(err);
            n += 1;
        }
    }
    (if n == 0 { 0.0 } else { sum / n as f64 }, max)
}

/// Compute (or cache-serve) the policy study for `config`.
///
/// # Errors
///
/// Fails on I/O errors, unparsable circuit/policy specs, or a grid whose
/// first cell is not a full-budget reference.
pub fn run_study(config: &StudyConfig) -> io::Result<PolicyStudy> {
    if config.policies.is_empty() {
        return Err(io::Error::other("policy grid is empty"));
    }
    if !config.budgets.contains(&1.0) {
        return Err(io::Error::other(
            "budget grid must contain 1.0 (the reference budget)",
        ));
    }
    let store = artifact_store();

    // The study artifact is keyed by the netlist plus every knob of the
    // sweep, so changing the grid (or the format) misses cleanly.
    let reference_request = cell_request(config, &config.policies[0], 1.0)?;
    let prepared = reference_request
        .circuit
        .prepare(config.stim_seed, config.cycles);
    let study_desc = format!(
        "policy-study;v={STUDY_VERSION};circuit={};policies={};budgets={:?};seed={};stim_seed={};cycles={}",
        config.circuit,
        config.policies.join("|"),
        config.budgets,
        config.seed,
        config.stim_seed,
        config.cycles,
    );
    let study_key = StoreKey::of(prepared.cc.netlist(), &study_desc);
    if !config.force {
        if let Some(study) = store.get::<PolicyStudy>(ArtifactKind::PolicyStudy, &study_key)? {
            eprintln!(
                "[policy-study] {} served from artifact store",
                config.circuit
            );
            return Ok(study);
        }
    }

    // Reference campaign first: everything else is measured against it.
    eprintln!(
        "[policy-study] {}: reference {} (full budget)",
        config.circuit, config.policies[0]
    );
    let (reference, reference_fingerprint, reference_wall_ms) = run_cell(&reference_request)?;
    let reference_injections: usize = reference.covered().map(|r| r.injections()).sum();
    let reference_ffr = reference.circuit_fdr();

    let mut rows = Vec::new();
    for policy in &config.policies {
        for &budget in &config.budgets {
            eprintln!(
                "[policy-study] {}: {policy} @ budget {budget}",
                config.circuit
            );
            let request = cell_request(config, policy, budget)?;
            // The reference cell was already computed above; rerunning it
            // would only record the cache-serve time as its wall time.
            let (table, fingerprint, wall_ms) = if policy == &config.policies[0] && budget >= 1.0 {
                (
                    reference.clone(),
                    reference_fingerprint.clone(),
                    reference_wall_ms,
                )
            } else {
                run_cell(&request)?
            };
            let injections: usize = table.covered().map(|r| r.injections()).sum();
            let (mean_err, max_err) = fdr_errors(&table, &reference);
            let circuit_ffr = table.circuit_fdr();

            // Budgeted cells additionally feed the ML flow.
            let estimate = if budget < 1.0 {
                let out_dir = sessions_dir().join(format!("{}-{fingerprint}", request.circuit));
                let options = EstimateOptions {
                    store: Some(cache_dir()),
                    ..EstimateOptions::default()
                };
                let summary = estimate_session(&out_dir, &options)?;
                let report = summary.report;
                let cv_r2 = report
                    .models
                    .iter()
                    .find(|m| m.model == report.best_model)
                    .map(|m| m.cv_r2)
                    .unwrap_or(f64::NAN);
                let mean_abs = {
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for row in &report.per_ff {
                        if let Some(ref_fdr) =
                            reference.fdr(ffr_netlist::FfId::from_index(row.index))
                        {
                            sum += (row.fdr - ref_fdr).abs();
                            n += 1;
                        }
                    }
                    if n == 0 {
                        0.0
                    } else {
                        sum / n as f64
                    }
                };
                Some(StudyEstimate {
                    best_model: report.best_model.clone(),
                    cv_r2,
                    circuit_ffr: report.circuit_ffr,
                    ffr_delta: report.circuit_ffr - reference_ffr,
                    mean_abs_fdr_error: mean_abs,
                })
            } else {
                None
            };

            rows.push(StudyRow {
                policy: policy.clone(),
                budget,
                fingerprint,
                measured_ffs: table.covered().count(),
                injections,
                saved_vs_reference: 1.0 - injections as f64 / reference_injections as f64,
                wall_ms,
                mean_abs_fdr_error: mean_err,
                max_abs_fdr_error: max_err,
                circuit_ffr,
                ffr_delta: circuit_ffr - reference_ffr,
                estimate,
            });
        }
    }

    let study = PolicyStudy {
        version: STUDY_VERSION,
        circuit: config.circuit.clone(),
        total_ffs: prepared.cc.num_ffs(),
        reference_policy: config.policies[0].clone(),
        reference_fingerprint,
        reference_injections,
        reference_ffr,
        rows,
    };
    store.put(ArtifactKind::PolicyStudy, &study_key, &study)?;
    Ok(study)
}

/// Render one study as the `docs/policy-study.md` document.
///
/// Everything in the rendering is a pure function of the study's
/// deterministic fields — wall times are deliberately excluded — so the
/// committed file can be re-rendered and diffed by CI.
pub fn render_markdown(study: &PolicyStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Policy study: fixed-170 vs Wilson-CI stopping");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "<!-- Generated by `cargo run --release -p ffr-bench --bin policy_study`."
    );
    let _ = writeln!(
        out,
        "     Do not edit by hand; CI re-renders this table and diffs it\n\
         \u{20}    (`policy_study --check`). -->"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "The paper fixes every flip-flop's campaign at 170 injections \
         (Leveugle et al.'s\nstatistical sizing); the `ffr` runner can \
         instead retire each flip-flop as soon\nas the Wilson confidence \
         interval on its FDR is tight enough \
         (`--policy\nwilson:<half_width>@<confidence>`). This table \
         quantifies the trade-off on\n`{}` ({} flip-flops): every policy × \
         measurement-budget cell is compared\nagainst the paper-faithful \
         `{}` full-budget reference\n(circuit FFR {:.4}, {} injections).",
        study.circuit,
        study.total_ffs,
        study.reference_policy,
        study.reference_ffr,
        study.reference_injections,
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| policy | budget | measured FFs | injections | saved | mean \
         \\|ΔFDR\\| | max \\|ΔFDR\\| | FFR | ΔFFR | ML flow (best model, \
         est. FFR, ΔFFR) |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---|");
    for row in &study.rows {
        let ml = match &row.estimate {
            None => "—".to_string(),
            Some(e) => format!(
                "{} · {:.4} · {:+.4}",
                e.best_model, e.circuit_ffr, e.ffr_delta
            ),
        };
        let _ = writeln!(
            out,
            "| `{}` | {:.0} % | {} | {} | {:.1} % | {:.4} | {:.4} | {:.4} | {:+.4} | {} |",
            row.policy,
            row.budget * 100.0,
            row.measured_ffs,
            row.injections,
            row.saved_vs_reference * 100.0,
            row.mean_abs_fdr_error,
            row.max_abs_fdr_error,
            row.circuit_ffr,
            row.ffr_delta,
            ml,
        );
    }
    let _ = writeln!(out);
    if let Some(headline) = study.headline(HEADLINE_FFR_TOLERANCE) {
        let _ = writeln!(
            out,
            "**Headline:** `{}` keeps the circuit FFR within {:.4} of the \
             fixed-170\nreference while saving {:.1} % of the injections \
             ({} vs {}).",
            headline.policy,
            headline.ffr_delta.abs(),
            headline.saved_vs_reference * 100.0,
            headline.injections,
            study.reference_injections,
        );
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Notes:\n\
         \n\
         * *saved* is relative to the reference campaign's injections; \
         negative values\n  mean the policy spends more than fixed-170 \
         (it buys confidence, not cost).\n\
         * \\|ΔFDR\\| columns compare per-flip-flop FDRs against the \
         reference table over\n  the cell's measured flip-flops.\n\
         * The headline considers Wilson rows only: a cheaper fixed cut \
         (`fixed:64`) can\n  land near the reference circuit FFR by \
         averaging luck, but carries no\n  per-flip-flop confidence \
         bound.\n\
         * The *ML flow* column feeds each budgeted cell's partial table \
         through\n  `ffr estimate` (CV model selection + prediction of \
         unmeasured flip-flops).\n\
         * Wall-clock timings live in `policy-study.json` (store \
         artifact), not here:\n  they are machine-dependent and would \
         defeat the byte-identical CI check.\n\
         * Regenerate with `cargo run --release -p ffr-bench --bin \
         policy_study`\n  (quick scale studies `mac-small`; \
         `FFR_SCALE=paper` adds the paper-scale MAC,\n  whose table goes \
         to stdout and the artifact store only)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(tag: &str) -> StudyConfig {
        // A deliberately small grid on a small circuit so the test runs
        // in seconds. The cap must exceed one 64-injection decision chunk
        // or adaptive stopping never gets to decide early.
        let mut config = StudyConfig::new("lfsr:8:2");
        config.policies = vec!["fixed:192".to_string(), "wilson:0.1@95:64..192".to_string()];
        config.budgets = vec![1.0, 0.5];
        config.cycles = 200;
        config.seed = 7 ^ tag.len() as u64;
        config
    }

    #[test]
    fn study_is_deterministic_and_cache_served() {
        let config = tiny_config("det");
        let first = run_study(&config).unwrap();
        assert_eq!(first.version, STUDY_VERSION);
        assert_eq!(first.rows.len(), 4);
        assert_eq!(first.reference_policy, "fixed:192");
        // The reference cell is exact: zero error against itself.
        let ref_row = first.full_budget_row("fixed:192").unwrap();
        assert_eq!(ref_row.injections, first.reference_injections);
        assert_eq!(ref_row.mean_abs_fdr_error, 0.0);
        assert_eq!(ref_row.ffr_delta, 0.0);
        // The Wilson cell saves injections at full budget.
        let wilson = first.full_budget_row("wilson:0.1@95:64..192").unwrap();
        assert!(wilson.saved_vs_reference > 0.0, "{wilson:?}");
        // Budgeted cells carry ML-flow results.
        for row in first.rows.iter().filter(|r| r.budget < 1.0) {
            let est = row.estimate.as_ref().expect("budgeted cell estimates");
            assert!(est.circuit_ffr.is_finite());
            assert!(!est.best_model.is_empty());
        }

        // A rerun is served from the study artifact, byte-identically.
        let second = run_study(&config).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );

        // A forced recompute reproduces every deterministic field (wall
        // times may differ).
        let mut forced = config.clone();
        forced.force = true;
        let mut third = run_study(&forced).unwrap();
        for (a, b) in third.rows.iter_mut().zip(first.rows.iter()) {
            a.wall_ms = b.wall_ms;
        }
        assert_eq!(first, third, "recomputed study must match modulo wall time");
    }

    #[test]
    fn markdown_rendering_is_deterministic_and_wall_free() {
        let config = tiny_config("md");
        let study = run_study(&config).unwrap();
        let a = render_markdown(&study);
        let b = render_markdown(&study);
        assert_eq!(a, b);
        assert!(a.contains("| `fixed:192` | 100 %"), "{a}");
        assert!(a.contains("policy_study"), "{a}");
        assert!(!a.contains("wall"), "wall time must stay out of the doc");
        // Wall time must not influence the rendering at all.
        let mut altered = study.clone();
        for row in &mut altered.rows {
            row.wall_ms = row.wall_ms.wrapping_add(12345);
        }
        assert_eq!(a, render_markdown(&altered));
    }

    #[test]
    fn bad_grids_are_rejected() {
        let mut config = tiny_config("bad");
        config.budgets = vec![0.5];
        assert!(run_study(&config).unwrap_err().to_string().contains("1.0"));
        let mut config = tiny_config("bad2");
        config.policies.clear();
        assert!(run_study(&config)
            .unwrap_err()
            .to_string()
            .contains("empty"));
    }
}
