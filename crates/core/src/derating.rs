//! Combining SEU and SET de-rating into a circuit-level soft-error
//! functional failure rate.
//!
//! The paper estimates the SEU side: per-flip-flop Functional De-Rating
//! factors, measured on a training subset and predicted for the rest
//! ([`EstimationFlow`](crate::EstimationFlow)). The follow-up cross-layer
//! work additionally needs the transient (SET) contribution: per-net
//! logical de-rating factors from a combinational-net campaign
//! ([`SetDeratingTable`]). This module folds both tables with raw event
//! rates into one number — the classic sum-over-sites de-rating model:
//!
//! ```text
//! FFR = λ_SEU · Σ_ff  FDR(ff)  +  λ_SET · Σ_net D(net)
//! ```
//!
//! where `λ_SEU` is the raw upset rate per flip-flop and `λ_SET` the raw
//! transient rate per combinational net (both in the caller's unit of
//! choice, e.g. FIT per site).

use crate::flow::Estimation;
use ffr_fault::{FdrTable, SetDeratingTable};

/// Raw single-event rates per site, before functional de-rating.
///
/// Units are the caller's (FIT per site is customary); the combined
/// estimate comes out in the same unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawEventRates {
    /// Raw SEU rate per flip-flop.
    pub seu_per_ff: f64,
    /// Raw SET rate per combinational net.
    pub set_per_net: f64,
}

/// Circuit-level soft-error failure-rate estimate, split by fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftErrorEstimate {
    /// SEU contribution: `λ_SEU · Σ_ff FDR(ff)`.
    pub seu_failure_rate: f64,
    /// SET contribution: `λ_SET · Σ_net D(net)`.
    pub set_failure_rate: f64,
}

impl SoftErrorEstimate {
    /// Total functional failure rate (both fault models).
    pub fn total(&self) -> f64 {
        self.seu_failure_rate + self.set_failure_rate
    }

    /// Fraction of the total contributed by transients (0 when the total
    /// is 0).
    pub fn set_share(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.set_failure_rate / total
        }
    }

    /// Combine an ML-assisted SEU estimation (measured + predicted FDR
    /// for every flip-flop) with a SET de-rating table.
    ///
    /// This is how a SET campaign feeds the estimation flow: the flow
    /// supplies the per-flip-flop side, the resumable SET campaign (`ffr
    /// run --fault set`) supplies the per-net side.
    pub fn from_estimation(
        estimation: &Estimation,
        set: &SetDeratingTable,
        rates: &RawEventRates,
    ) -> SoftErrorEstimate {
        let seu_sum: f64 = estimation.values().iter().sum();
        SoftErrorEstimate::from_sums(seu_sum, set, rates)
    }

    /// Combine a fully measured SEU FDR table (the paper's flat-campaign
    /// baseline) with a SET de-rating table.
    ///
    /// # Panics
    ///
    /// Panics if the FDR table does not cover every flip-flop.
    pub fn from_tables(
        fdr: &FdrTable,
        set: &SetDeratingTable,
        rates: &RawEventRates,
    ) -> SoftErrorEstimate {
        let seu_sum: f64 = fdr.dense_fdr().iter().sum();
        SoftErrorEstimate::from_sums(seu_sum, set, rates)
    }

    /// Like [`SoftErrorEstimate::from_estimation`], but for a SET table
    /// that covers only a *sample* of the circuit's combinational nets:
    /// the mean de-rating over covered nets is extrapolated to
    /// `set_population` sites, so a 1-in-N subsampled campaign still
    /// yields an unbiased SET contribution instead of an N× undercount.
    ///
    /// With `set_population == set.num_nets()` this equals
    /// [`SoftErrorEstimate::from_estimation`] exactly.
    pub fn from_estimation_sampled(
        estimation: &Estimation,
        set: &SetDeratingTable,
        rates: &RawEventRates,
        set_population: usize,
    ) -> SoftErrorEstimate {
        let seu_sum: f64 = estimation.values().iter().sum();
        SoftErrorEstimate {
            seu_failure_rate: rates.seu_per_ff * seu_sum,
            set_failure_rate: rates.set_per_net * set.circuit_derating() * set_population as f64,
        }
    }

    fn from_sums(seu_sum: f64, set: &SetDeratingTable, rates: &RawEventRates) -> SoftErrorEstimate {
        let set_sum: f64 = set.covered().map(|r| r.derating()).sum();
        SoftErrorEstimate {
            seu_failure_rate: rates.seu_per_ff * seu_sum,
            set_failure_rate: rates.set_per_net * set_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_fault::{FailureClass, FfCampaignResult, NetSetResult};
    use ffr_netlist::{FfId, NetId};

    fn counts(benign: usize, fail: usize) -> [usize; FailureClass::ALL.len()] {
        let mut c = [0usize; FailureClass::ALL.len()];
        c[FailureClass::Benign.tally_index()] = benign;
        c[FailureClass::OutputMismatch.tally_index()] = fail;
        c
    }

    #[test]
    fn combined_rate_is_sum_over_sites() {
        // Two FFs with FDR 1.0 and 0.5; two nets with derating 0.25 and 0.
        let fdr = FdrTable::from_results(
            2,
            vec![
                FfCampaignResult::new(FfId::from_index(0), counts(0, 8)),
                FfCampaignResult::new(FfId::from_index(1), counts(4, 4)),
            ],
            8,
        );
        let set = SetDeratingTable::from_results(
            vec![
                NetSetResult::new(NetId::from_index(3), counts(6, 2)),
                NetSetResult::new(NetId::from_index(9), counts(8, 0)),
            ],
            8,
        );
        let rates = RawEventRates {
            seu_per_ff: 10.0,
            set_per_net: 2.0,
        };
        let est = SoftErrorEstimate::from_tables(&fdr, &set, &rates);
        assert!((est.seu_failure_rate - 15.0).abs() < 1e-12);
        assert!((est.set_failure_rate - 0.5).abs() < 1e-12);
        assert!((est.total() - 15.5).abs() < 1e-12);
        assert!(est.set_share() > 0.0 && est.set_share() < 0.1);
    }

    #[test]
    fn sampled_constructor_extrapolates_to_population() {
        let set = SetDeratingTable::from_results(
            vec![
                NetSetResult::new(NetId::from_index(3), counts(6, 2)), // 0.25
                NetSetResult::new(NetId::from_index(9), counts(8, 0)), // 0.0
            ],
            8,
        );
        let rates = RawEventRates {
            seu_per_ff: 0.0,
            set_per_net: 2.0,
        };
        // Fake estimation with no flip-flops: only the SET side matters.
        let estimation = Estimation {
            per_ff: vec![],
            trained_ffs: vec![],
            measured: FdrTable::from_results(0, vec![], 8),
        };
        // 2 covered nets standing in for a population of 16: mean 0.125
        // de-rating × 16 sites × rate 2.0 = 4.0 (8× the covered-only sum).
        let est = SoftErrorEstimate::from_estimation_sampled(&estimation, &set, &rates, 16);
        assert!((est.set_failure_rate - 4.0).abs() < 1e-12);
        // Population == covered count reproduces the exact constructor.
        let exact = SoftErrorEstimate::from_estimation(&estimation, &set, &rates);
        let same = SoftErrorEstimate::from_estimation_sampled(&estimation, &set, &rates, 2);
        assert!((exact.set_failure_rate - same.set_failure_rate).abs() < 1e-12);
    }

    #[test]
    fn empty_tables_give_zero_rate() {
        let fdr = FdrTable::from_results(0, vec![], 8);
        let set = SetDeratingTable::from_results(vec![], 8);
        let rates = RawEventRates {
            seu_per_ff: 10.0,
            set_per_net: 2.0,
        };
        let est = SoftErrorEstimate::from_tables(&fdr, &set, &rates);
        assert_eq!(est.total(), 0.0);
        assert_eq!(est.set_share(), 0.0);
    }
}
