//! The production estimation flow: inject a training subset, predict the
//! rest (Fig. 1 of the paper).

use crate::models::ModelKind;
use ffr_fault::{Campaign, CampaignConfig, FailureJudge, FdrTable};
use ffr_features::{extract_features, FeatureMatrix};
use ffr_ml::Regressor;
use ffr_netlist::FfId;
use ffr_sim::{CompiledCircuit, Stimulus, WatchList};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the estimation flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Fraction of flip-flops whose FDR is measured by fault injection
    /// (the paper recommends 0.2–0.5).
    pub training_fraction: f64,
    /// Injections per trained flip-flop.
    pub injections_per_ff: usize,
    /// Injection window (the testbench's active phase).
    pub window: std::ops::Range<u64>,
    /// Seed for subset selection and injection plans.
    pub seed: u64,
}

impl FlowConfig {
    /// Paper-style defaults (50 % training, 170 injections).
    pub fn new(window: std::ops::Range<u64>) -> FlowConfig {
        FlowConfig {
            training_fraction: 0.5,
            injections_per_ff: 170,
            window,
            seed: 0,
        }
    }
}

/// How a flip-flop's FDR value in an [`Estimation`] was obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FdrEstimate {
    /// Measured by statistical fault injection (training subset).
    Measured(f64),
    /// Predicted by the trained model.
    Predicted(f64),
}

impl FdrEstimate {
    /// The FDR value regardless of provenance.
    pub fn value(self) -> f64 {
        match self {
            FdrEstimate::Measured(v) | FdrEstimate::Predicted(v) => v,
        }
    }

    /// `true` if the value came from fault injection.
    pub fn is_measured(self) -> bool {
        matches!(self, FdrEstimate::Measured(_))
    }
}

/// Result of one estimation-flow run: a complete per-flip-flop FDR list
/// obtained from a partial campaign plus model predictions.
#[derive(Debug, Clone)]
pub struct Estimation {
    /// Per-flip-flop estimates, indexed by `FfId`.
    pub per_ff: Vec<FdrEstimate>,
    /// The flip-flops that were fault-injected.
    pub trained_ffs: Vec<FfId>,
    /// The partial reference table from the campaign.
    pub measured: FdrTable,
}

impl Estimation {
    /// Dense FDR vector (measured and predicted values mixed).
    pub fn values(&self) -> Vec<f64> {
        self.per_ff.iter().map(|e| e.value()).collect()
    }

    /// Circuit-level FDR implied by the estimates.
    pub fn circuit_fdr(&self) -> f64 {
        let v = self.values();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Number of fault-injection simulations the flow spent.
    pub fn injections_spent(&self) -> usize {
        self.trained_ffs.len() * self.measured.injections_per_ff()
    }
}

/// The ML-assisted FDR estimation flow of Fig. 1.
///
/// Construction captures the golden run and extracts features; each
/// [`estimate`](EstimationFlow::estimate) call injects faults into a
/// training subset of flip-flops, trains the chosen model and predicts the
/// FDR of every remaining flip-flop.
pub struct EstimationFlow<'a, S, J> {
    campaign: Campaign<'a, S, J>,
    features: FeatureMatrix,
    num_ffs: usize,
}

impl<'a, S, J> EstimationFlow<'a, S, J>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    /// Prepare the flow: golden run + feature extraction.
    pub fn new(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
    ) -> EstimationFlow<'a, S, J> {
        let campaign = Campaign::new(cc, stimulus, watch, judge);
        let features = extract_features(cc, &campaign.golden().activity);
        EstimationFlow {
            campaign,
            features,
            num_ffs: cc.num_ffs(),
        }
    }

    /// Prepare the flow around an already-captured golden run (e.g. one
    /// served from an artifact store) instead of re-simulating it — the
    /// golden run is the most expensive part of flow setup on large
    /// designs.
    pub fn with_golden(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
        golden: ffr_sim::GoldenRun,
    ) -> EstimationFlow<'a, S, J> {
        let campaign = Campaign::with_golden(cc, stimulus, watch, judge, golden);
        let features = extract_features(cc, &campaign.golden().activity);
        EstimationFlow {
            campaign,
            features,
            num_ffs: cc.num_ffs(),
        }
    }

    /// The extracted feature matrix.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// The underlying campaign (e.g. to reuse its golden run).
    pub fn campaign(&self) -> &Campaign<'a, S, J> {
        &self.campaign
    }

    /// Run the flow with the given model.
    pub fn estimate(&self, kind: ModelKind, config: &FlowConfig) -> Estimation {
        assert!(
            config.training_fraction > 0.0 && config.training_fraction < 1.0,
            "training fraction must be in (0,1)"
        );
        // Choose the training subset.
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut ffs: Vec<FfId> = (0..self.num_ffs).map(FfId::from_index).collect();
        ffs.shuffle(&mut rng);
        let n_train = ((self.num_ffs as f64) * config.training_fraction)
            .round()
            .max(2.0) as usize;
        let trained_ffs: Vec<FfId> = ffs[..n_train.min(self.num_ffs)].to_vec();

        // Partial campaign on the training subset only.
        let cc_config = CampaignConfig::new(config.window.clone())
            .with_injections(config.injections_per_ff)
            .with_seed(config.seed);
        let measured = self
            .campaign
            .run_parallel_subset(&trained_ffs, &cc_config, |_, _| {});

        // Train on measured values.
        let rows = self.features.to_rows();
        let tx: Vec<Vec<f64>> = trained_ffs
            .iter()
            .map(|&f| rows[f.index()].clone())
            .collect();
        let ty: Vec<f64> = trained_ffs
            .iter()
            .map(|&f| measured.fdr(f).expect("trained FF measured"))
            .collect();
        let mut model = kind.build();
        model.fit(&tx, &ty);

        // Assemble the per-FF estimates (clamped to the valid FDR range).
        let mut per_ff = Vec::with_capacity(self.num_ffs);
        for (i, row) in rows.iter().enumerate().take(self.num_ffs) {
            let ff = FfId::from_index(i);
            match measured.fdr(ff) {
                Some(v) => per_ff.push(FdrEstimate::Measured(v)),
                None => {
                    let p = model.predict_one(row).clamp(0.0, 1.0);
                    per_ff.push(FdrEstimate::Predicted(p));
                }
            }
        }
        Estimation {
            per_ff,
            trained_ffs,
            measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
    use ffr_sim::GoldenRun;

    #[test]
    fn flow_estimates_every_ff_and_saves_injections() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let config = FlowConfig {
            training_fraction: 0.3,
            injections_per_ff: 8,
            window: tb.injection_window(),
            seed: 5,
        };
        let est = flow.estimate(ModelKind::Knn, &config);
        assert_eq!(est.per_ff.len(), cc.num_ffs());
        let measured = est.per_ff.iter().filter(|e| e.is_measured()).count();
        let expected_train = ((cc.num_ffs() as f64) * 0.3).round() as usize;
        assert_eq!(measured, expected_train);
        assert_eq!(est.trained_ffs.len(), expected_train);
        assert_eq!(est.injections_spent(), expected_train * 8);
        // All estimates are valid FDR values.
        assert!(est.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The circuit FDR is a sane aggregate.
        let c = est.circuit_fdr();
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn cached_golden_run_matches_fresh_capture() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let config = FlowConfig {
            training_fraction: 0.25,
            injections_per_ff: 4,
            window: tb.injection_window(),
            seed: 3,
        };
        let fresh = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let cached = EstimationFlow::with_golden(&cc, &tb, &watch, &judge, golden);
        assert_eq!(
            fresh.features().to_rows(),
            cached.features().to_rows(),
            "features must not depend on how the golden run was obtained"
        );
        let a = fresh.estimate(ModelKind::Knn, &config);
        let b = cached.estimate(ModelKind::Knn, &config);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn flow_is_deterministic() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let config = FlowConfig {
            training_fraction: 0.25,
            injections_per_ff: 4,
            window: tb.injection_window(),
            seed: 9,
        };
        let a = flow.estimate(ModelKind::DecisionTree, &config);
        let b = flow.estimate(ModelKind::DecisionTree, &config);
        assert_eq!(a.values(), b.values());
    }
}
