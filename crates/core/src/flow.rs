//! The production estimation flow: inject a training subset, predict the
//! rest (Fig. 1 of the paper).

use crate::models::ModelKind;
use ffr_fault::{Campaign, CampaignConfig, FailureJudge, FdrTable};
use ffr_features::{extract_features, FeatureMatrix};
use ffr_ml::Regressor;
use ffr_netlist::FfId;
use ffr_sim::{CompiledCircuit, Stimulus, WatchList};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{de_field, Deserialize, Serialize, Value};

/// Parameters of the estimation flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Fraction of flip-flops whose FDR is measured by fault injection
    /// (the paper recommends 0.2–0.5).
    pub training_fraction: f64,
    /// Injections per trained flip-flop.
    pub injections_per_ff: usize,
    /// Injection window (the testbench's active phase).
    pub window: std::ops::Range<u64>,
    /// Seed for subset selection and injection plans.
    pub seed: u64,
}

impl FlowConfig {
    /// Paper-style defaults (50 % training, 170 injections).
    pub fn new(window: std::ops::Range<u64>) -> FlowConfig {
        FlowConfig {
            training_fraction: 0.5,
            injections_per_ff: 170,
            window,
            seed: 0,
        }
    }
}

// `Range` has no serde impl in the vendored substitute; flatten the window
// into explicit start/end fields so persisted flow configurations stay
// self-describing JSON objects.
impl Serialize for FlowConfig {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "training_fraction".into(),
                self.training_fraction.to_value(),
            ),
            (
                "injections_per_ff".into(),
                self.injections_per_ff.to_value(),
            ),
            ("window_start".into(), self.window.start.to_value()),
            ("window_end".into(), self.window.end.to_value()),
            ("seed".into(), self.seed.to_value()),
        ])
    }
}

impl Deserialize for FlowConfig {
    fn from_value(v: &Value) -> Result<FlowConfig, serde::Error> {
        let start: u64 = de_field(v, "window_start")?;
        let end: u64 = de_field(v, "window_end")?;
        Ok(FlowConfig {
            training_fraction: de_field(v, "training_fraction")?,
            injections_per_ff: de_field(v, "injections_per_ff")?,
            window: start..end,
            seed: de_field(v, "seed")?,
        })
    }
}

/// How a flip-flop's FDR value in an [`Estimation`] was obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FdrEstimate {
    /// Measured by statistical fault injection (training subset).
    Measured(f64),
    /// Predicted by the trained model.
    Predicted(f64),
}

impl FdrEstimate {
    /// The FDR value regardless of provenance.
    pub fn value(self) -> f64 {
        match self {
            FdrEstimate::Measured(v) | FdrEstimate::Predicted(v) => v,
        }
    }

    /// `true` if the value came from fault injection.
    pub fn is_measured(self) -> bool {
        matches!(self, FdrEstimate::Measured(_))
    }
}

// The vendored derive only handles fieldless enums; estimates carry their
// value, so the provenance is encoded as an explicit `source` tag.
impl Serialize for FdrEstimate {
    fn to_value(&self) -> Value {
        let (source, v) = match self {
            FdrEstimate::Measured(v) => ("measured", *v),
            FdrEstimate::Predicted(v) => ("predicted", *v),
        };
        Value::Object(vec![
            ("source".into(), Value::Str(source.into())),
            ("fdr".into(), Value::F64(v)),
        ])
    }
}

impl Deserialize for FdrEstimate {
    fn from_value(v: &Value) -> Result<FdrEstimate, serde::Error> {
        let source: String = de_field(v, "source")?;
        let fdr: f64 = de_field(v, "fdr")?;
        match source.as_str() {
            "measured" => Ok(FdrEstimate::Measured(fdr)),
            "predicted" => Ok(FdrEstimate::Predicted(fdr)),
            other => Err(serde::Error::msg(format!(
                "unknown FDR estimate source `{other}`"
            ))),
        }
    }
}

/// Result of one estimation-flow run: a complete per-flip-flop FDR list
/// obtained from a partial campaign plus model predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimation {
    /// Per-flip-flop estimates, indexed by `FfId`.
    pub per_ff: Vec<FdrEstimate>,
    /// The flip-flops that were fault-injected.
    pub trained_ffs: Vec<FfId>,
    /// The partial reference table from the campaign.
    pub measured: FdrTable,
}

impl Estimation {
    /// Dense FDR vector (measured and predicted values mixed).
    pub fn values(&self) -> Vec<f64> {
        self.per_ff.iter().map(|e| e.value()).collect()
    }

    /// Circuit-level FDR implied by the estimates.
    pub fn circuit_fdr(&self) -> f64 {
        let v = self.values();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Number of fault-injection simulations the flow spent.
    pub fn injections_spent(&self) -> usize {
        self.trained_ffs.len() * self.measured.injections_per_ff()
    }

    /// Build an estimation from an **already-measured** (possibly partial)
    /// FDR table and a feature matrix: train `model` on the covered
    /// flip-flops and predict every uncovered one.
    ///
    /// This is the store-backed entry point of the flow — the table
    /// typically comes from a checkpointed `ffr run` campaign and the
    /// features from the artifact store, so **no simulation happens
    /// here**: unlike [`EstimationFlow::estimate`], which injects the
    /// training subset itself, this consumes measurements that already
    /// exist.
    ///
    /// # Panics
    ///
    /// Panics if the feature matrix and table disagree on the number of
    /// flip-flops, or fewer than two flip-flops are covered.
    pub fn from_measured_with<M: Regressor + ?Sized>(
        features: &FeatureMatrix,
        measured: &FdrTable,
        model: &mut M,
    ) -> Estimation {
        assert_eq!(
            features.num_rows(),
            measured.num_ffs(),
            "feature matrix and FDR table cover different circuits"
        );
        let trained_ffs: Vec<FfId> = measured.covered().map(|r| r.ff()).collect();
        assert!(
            trained_ffs.len() >= 2,
            "need at least 2 measured flip-flops to train on (got {})",
            trained_ffs.len()
        );
        let rows = features.to_rows();
        let tx: Vec<Vec<f64>> = trained_ffs
            .iter()
            .map(|&f| rows[f.index()].clone())
            .collect();
        let ty: Vec<f64> = trained_ffs
            .iter()
            .map(|&f| measured.fdr(f).expect("covered FF has an FDR"))
            .collect();
        model.fit(&tx, &ty);
        let per_ff = rows
            .iter()
            .enumerate()
            .map(|(i, row)| match measured.fdr(FfId::from_index(i)) {
                Some(v) => FdrEstimate::Measured(v),
                None => FdrEstimate::Predicted(model.predict_one(row).clamp(0.0, 1.0)),
            })
            .collect();
        Estimation {
            per_ff,
            trained_ffs,
            measured: measured.clone(),
        }
    }

    /// [`Estimation::from_measured_with`] using a [`ModelKind`]'s tuned
    /// default model (fixed seeds, so reruns are bit-identical).
    pub fn from_measured(
        features: &FeatureMatrix,
        measured: &FdrTable,
        kind: ModelKind,
    ) -> Estimation {
        Estimation::from_measured_with(features, measured, &mut kind.build())
    }
}

/// The ML-assisted FDR estimation flow of Fig. 1.
///
/// Construction captures the golden run and extracts features; each
/// [`estimate`](EstimationFlow::estimate) call injects faults into a
/// training subset of flip-flops, trains the chosen model and predicts the
/// FDR of every remaining flip-flop.
pub struct EstimationFlow<'a, S, J> {
    campaign: Campaign<'a, S, J>,
    features: FeatureMatrix,
    num_ffs: usize,
}

impl<'a, S, J> EstimationFlow<'a, S, J>
where
    S: Stimulus + Sync,
    J: FailureJudge,
{
    /// Prepare the flow: golden run + feature extraction.
    pub fn new(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
    ) -> EstimationFlow<'a, S, J> {
        let campaign = Campaign::new(cc, stimulus, watch, judge);
        let features = extract_features(cc, &campaign.golden().activity);
        EstimationFlow {
            campaign,
            features,
            num_ffs: cc.num_ffs(),
        }
    }

    /// Prepare the flow around an already-captured golden run (e.g. one
    /// served from an artifact store) instead of re-simulating it — the
    /// golden run is the most expensive part of flow setup on large
    /// designs.
    pub fn with_golden(
        cc: &'a CompiledCircuit,
        stimulus: &'a S,
        watch: &'a WatchList,
        judge: &'a J,
        golden: ffr_sim::GoldenRun,
    ) -> EstimationFlow<'a, S, J> {
        let campaign = Campaign::with_golden(cc, stimulus, watch, judge, golden);
        let features = extract_features(cc, &campaign.golden().activity);
        EstimationFlow {
            campaign,
            features,
            num_ffs: cc.num_ffs(),
        }
    }

    /// The extracted feature matrix.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// The underlying campaign (e.g. to reuse its golden run).
    pub fn campaign(&self) -> &Campaign<'a, S, J> {
        &self.campaign
    }

    /// Run the flow with the given model.
    pub fn estimate(&self, kind: ModelKind, config: &FlowConfig) -> Estimation {
        assert!(
            config.training_fraction > 0.0 && config.training_fraction < 1.0,
            "training fraction must be in (0,1)"
        );
        // Choose the training subset.
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut ffs: Vec<FfId> = (0..self.num_ffs).map(FfId::from_index).collect();
        ffs.shuffle(&mut rng);
        let n_train = ((self.num_ffs as f64) * config.training_fraction)
            .round()
            .max(2.0) as usize;
        let trained_ffs: Vec<FfId> = ffs[..n_train.min(self.num_ffs)].to_vec();

        // Partial campaign on the training subset only.
        let cc_config = CampaignConfig::new(config.window.clone())
            .with_injections(config.injections_per_ff)
            .with_seed(config.seed);
        let measured = self
            .campaign
            .run_parallel_subset(&trained_ffs, &cc_config, |_, _| {});

        // Train on measured values.
        let rows = self.features.to_rows();
        let tx: Vec<Vec<f64>> = trained_ffs
            .iter()
            .map(|&f| rows[f.index()].clone())
            .collect();
        let ty: Vec<f64> = trained_ffs
            .iter()
            .map(|&f| measured.fdr(f).expect("trained FF measured"))
            .collect();
        let mut model = kind.build();
        model.fit(&tx, &ty);

        // Assemble the per-FF estimates (clamped to the valid FDR range).
        let mut per_ff = Vec::with_capacity(self.num_ffs);
        for (i, row) in rows.iter().enumerate().take(self.num_ffs) {
            let ff = FfId::from_index(i);
            match measured.fdr(ff) {
                Some(v) => per_ff.push(FdrEstimate::Measured(v)),
                None => {
                    let p = model.predict_one(row).clamp(0.0, 1.0);
                    per_ff.push(FdrEstimate::Predicted(p));
                }
            }
        }
        Estimation {
            per_ff,
            trained_ffs,
            measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
    use ffr_sim::GoldenRun;

    #[test]
    fn flow_estimates_every_ff_and_saves_injections() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let config = FlowConfig {
            training_fraction: 0.3,
            injections_per_ff: 8,
            window: tb.injection_window(),
            seed: 5,
        };
        let est = flow.estimate(ModelKind::Knn, &config);
        assert_eq!(est.per_ff.len(), cc.num_ffs());
        let measured = est.per_ff.iter().filter(|e| e.is_measured()).count();
        let expected_train = ((cc.num_ffs() as f64) * 0.3).round() as usize;
        assert_eq!(measured, expected_train);
        assert_eq!(est.trained_ffs.len(), expected_train);
        assert_eq!(est.injections_spent(), expected_train * 8);
        // All estimates are valid FDR values.
        assert!(est.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The circuit FDR is a sane aggregate.
        let c = est.circuit_fdr();
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn cached_golden_run_matches_fresh_capture() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let config = FlowConfig {
            training_fraction: 0.25,
            injections_per_ff: 4,
            window: tb.injection_window(),
            seed: 3,
        };
        let fresh = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let cached = EstimationFlow::with_golden(&cc, &tb, &watch, &judge, golden);
        assert_eq!(
            fresh.features().to_rows(),
            cached.features().to_rows(),
            "features must not depend on how the golden run was obtained"
        );
        let a = fresh.estimate(ModelKind::Knn, &config);
        let b = cached.estimate(ModelKind::Knn, &config);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn flow_is_deterministic() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
        let config = FlowConfig {
            training_fraction: 0.25,
            injections_per_ff: 4,
            window: tb.injection_window(),
            seed: 9,
        };
        let a = flow.estimate(ModelKind::DecisionTree, &config);
        let b = flow.estimate(ModelKind::DecisionTree, &config);
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn from_measured_trains_on_covered_ffs_only() {
        use ffr_fault::CampaignConfig;
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let features = ffr_features::extract_features(&cc, &golden.activity);
        // Measure a third of the flip-flops with a real (tiny) campaign.
        let campaign = ffr_fault::Campaign::with_golden(&cc, &tb, &watch, &judge, golden);
        let subset: Vec<ffr_netlist::FfId> = (0..cc.num_ffs())
            .filter(|i| i % 3 == 0)
            .map(ffr_netlist::FfId::from_index)
            .collect();
        let config = CampaignConfig::new(tb.injection_window())
            .with_injections(4)
            .with_seed(11);
        let table = campaign.run_parallel_subset(&subset, &config, |_, _| {});

        let est = Estimation::from_measured(&features, &table, ModelKind::Knn);
        assert_eq!(est.per_ff.len(), cc.num_ffs());
        assert_eq!(est.trained_ffs.len(), subset.len());
        let measured = est.per_ff.iter().filter(|e| e.is_measured()).count();
        assert_eq!(measured, subset.len());
        assert!(est.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // No simulation happens: reruns off the same table are identical.
        let again = Estimation::from_measured(&features, &table, ModelKind::Knn);
        assert_eq!(est, again);
    }

    #[test]
    fn estimation_and_flow_config_serde_round_trip() {
        let config = FlowConfig {
            training_fraction: 0.4,
            injections_per_ff: 17,
            window: 5..99,
            seed: 21,
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: FlowConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);

        use ffr_fault::{FailureClass, FfCampaignResult};
        let mut counts = [0usize; FailureClass::ALL.len()];
        counts[FailureClass::Benign.tally_index()] = 3;
        counts[FailureClass::OutputMismatch.tally_index()] = 1;
        let table = ffr_fault::FdrTable::from_results(
            2,
            vec![FfCampaignResult::new(
                ffr_netlist::FfId::from_index(1),
                counts,
            )],
            4,
        );
        let est = Estimation {
            per_ff: vec![FdrEstimate::Predicted(0.125), FdrEstimate::Measured(0.25)],
            trained_ffs: vec![ffr_netlist::FfId::from_index(1)],
            measured: table,
        };
        let json = serde_json::to_string(&est).unwrap();
        let back: Estimation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, est);
        assert!(json.contains("\"predicted\""), "{json}");
    }
}
