//! The paper's methodology: ML-assisted estimation of per-flip-flop
//! Functional De-Rating factors.
//!
//! This crate wires the substrates together into the flow of Fig. 1:
//!
//! 1. compile the gate-level netlist and capture the **golden run**
//!    ([`ffr_sim`]),
//! 2. extract the per-flip-flop **feature vectors** ([`ffr_features`]),
//! 3. obtain reference FDR values by **statistical fault injection** —
//!    either for every flip-flop (the paper's validation baseline) or only
//!    for a training subset (the cost-saving use case, [`ffr_fault`]),
//! 4. **train and evaluate regression models** ([`ffr_ml`]) under 10-fold
//!    stratified cross-validation, producing the paper's Table I metrics,
//!    the per-fold prediction plots (Figs. 2a/3a/4a) and the learning
//!    curves (Figs. 2b/3b/4b).
//!
//! Entry points:
//!
//! * [`ReferenceDataset::collect`] — full campaign + features (§IV-A),
//! * [`ModelKind`] — the paper's three models plus the future-work ones,
//!   with tuned hyperparameters and default search spaces,
//! * [`evaluate_model`] / [`compare_models`] — Table I,
//! * [`prediction_report`] — Figs. 2a/3a/4a,
//! * [`model_learning_curve`] — Figs. 2b/3b/4b,
//! * [`EstimationFlow`] — the production flow: inject a fraction, predict
//!   the rest,
//! * [`SoftErrorEstimate`] — fold the SEU estimates and a SET de-rating
//!   table (from `ffr run --fault set`) into one circuit-level
//!   functional failure rate,
//! * [`savings`] — the 2–5× campaign-cost-reduction analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod derating;
mod flow;
mod models;
mod report;
pub mod savings;

pub use dataset::ReferenceDataset;
pub use derating::{RawEventRates, SoftErrorEstimate};
pub use flow::{Estimation, EstimationFlow, FdrEstimate, FlowConfig};
pub use models::{DecisionTreeParams, KnnParams, ModelCandidate, ModelKind, SvrParams};
pub use report::{
    compare_models, evaluate_model, model_learning_curve, prediction_report, LearningCurveReport,
    ModelComparison, PredictionReport,
};
