//! The reference dataset: per-flip-flop features paired with
//! fault-injection FDR values.

use ffr_fault::{Campaign, CampaignConfig, FailureJudge, FdrTable};
use ffr_features::{extract_features, FeatureMatrix};
use ffr_sim::{CompiledCircuit, Stimulus, WatchList};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Features and reference FDR for every flip-flop of a circuit — the
/// training/validation corpus of §IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceDataset {
    /// Per-flip-flop feature matrix (row `i` ↔ `FfId(i)`).
    pub features: FeatureMatrix,
    /// Per-flip-flop FDR from the flat campaign (index ↔ `FfId`).
    pub fdr: Vec<f64>,
    /// Injections per flip-flop used for the reference campaign.
    pub injections_per_ff: usize,
}

impl ReferenceDataset {
    /// Run the full flat statistical fault-injection campaign and extract
    /// the features, producing the complete reference dataset.
    ///
    /// `progress` receives `(flip-flops done, total)`.
    pub fn collect<S, J>(
        cc: &CompiledCircuit,
        stimulus: &S,
        watch: &WatchList,
        judge: &J,
        config: &CampaignConfig,
        progress: impl Fn(usize, usize) + Sync,
    ) -> ReferenceDataset
    where
        S: Stimulus + Sync,
        J: FailureJudge,
    {
        let campaign = Campaign::new(cc, stimulus, watch, judge);
        let features = extract_features(cc, &campaign.golden().activity);
        let all: Vec<ffr_netlist::FfId> = (0..cc.num_ffs())
            .map(ffr_netlist::FfId::from_index)
            .collect();
        let table: FdrTable = campaign.run_parallel_subset(&all, config, progress);
        ReferenceDataset {
            features,
            fdr: table.dense_fdr(),
            injections_per_ff: config.injections_per_ff,
        }
    }

    /// Number of samples (flip-flops).
    pub fn len(&self) -> usize {
        self.fdr.len()
    }

    /// `true` when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.fdr.is_empty()
    }

    /// Feature rows in the `Vec<Vec<f64>>` form `ffr-ml` consumes.
    pub fn x(&self) -> Vec<Vec<f64>> {
        self.features.to_rows()
    }

    /// Reference targets.
    pub fn y(&self) -> &[f64] {
        &self.fdr
    }

    /// Restrict to a feature-column subset (ablation experiments).
    pub fn with_columns(&self, cols: &[usize]) -> ReferenceDataset {
        ReferenceDataset {
            features: self.features.select_columns(cols),
            fdr: self.fdr.clone(),
            injections_per_ff: self.injections_per_ff,
        }
    }

    /// Cache the dataset as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a dataset written by [`ReferenceDataset::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load_json(path: &Path) -> io::Result<ReferenceDataset> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
    use ffr_sim::GoldenRun;

    #[test]
    fn collect_small_mac_dataset() {
        let (cc, tb, watch, extractor) =
            MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
        let golden = GoldenRun::capture(&cc, &tb, &watch);
        let judge = MacJudge::new(extractor, &golden);
        let config = CampaignConfig::new(tb.injection_window())
            .with_injections(6)
            .with_seed(1);
        let ds = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});
        assert_eq!(ds.len(), cc.num_ffs());
        assert!(!ds.is_empty());
        assert!(ds.y().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The dataset is non-degenerate: some FFs fail, some don't.
        let n_zero = ds.y().iter().filter(|&&v| v == 0.0).count();
        let n_pos = ds.y().iter().filter(|&&v| v > 0.0).count();
        assert!(n_zero > 0 && n_pos > 0, "zero={n_zero} pos={n_pos}");
        // Round-trip through the cache format.
        let dir = std::env::temp_dir().join("ffr_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        ds.save_json(&path).unwrap();
        let loaded = ReferenceDataset::load_json(&path).unwrap();
        assert_eq!(loaded, ds);
    }
}
