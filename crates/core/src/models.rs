//! The model zoo: the paper's three evaluated models and its future-work
//! models, with tuned hyperparameters and default search spaces.

use ffr_ml::{
    Activation, Distance, GradientBoostingRegressor, Kernel, KnnRegressor, LinearRegression,
    MlpRegressor, RandomForestRegressor, Regressor, RidgeRegression, ScaledRegressor, SvrRegressor,
    WeightScheme,
};
use serde::{Deserialize, Serialize};

/// Every regression model the workspace can evaluate.
///
/// The first three are the paper's §IV models with the hyperparameters the
/// paper reports from its random + grid search (k-NN: `k = 3`, Manhattan,
/// inverse-distance; SVR: `C = 3.5`, `γ = 0.055`, `ε = 0.025`); the rest
/// are the future-work models of §V.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Ordinary linear least squares (§IV-B.1).
    LinearLeastSquares,
    /// k-nearest neighbors with the paper's tuned hyperparameters
    /// (§IV-B.2).
    Knn,
    /// ε-SVR with RBF kernel and the paper's tuned hyperparameters
    /// (§IV-B.3).
    SvrRbf,
    /// Ridge regression (regularized linear baseline).
    Ridge,
    /// CART decision tree (future work).
    DecisionTree,
    /// Random forest (future work).
    RandomForest,
    /// Gradient boosting (future work: "boosting algorithms").
    GradientBoosting,
    /// Multi-layer perceptron (future work).
    Mlp,
}

impl ModelKind {
    /// The three models of the paper's Table I, in table order.
    pub const PAPER: [ModelKind; 3] = [
        ModelKind::LinearLeastSquares,
        ModelKind::Knn,
        ModelKind::SvrRbf,
    ];

    /// Every model, paper models first.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::LinearLeastSquares,
        ModelKind::Knn,
        ModelKind::SvrRbf,
        ModelKind::Ridge,
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
        ModelKind::GradientBoosting,
        ModelKind::Mlp,
    ];

    /// Human-readable name matching the paper's table rows.
    pub fn display_name(self) -> &'static str {
        match self {
            ModelKind::LinearLeastSquares => "Linear Least Squares",
            ModelKind::Knn => "k-NN",
            ModelKind::SvrRbf => "SVR w/ RBF Kernel",
            ModelKind::Ridge => "Ridge Regression",
            ModelKind::DecisionTree => "Decision Tree",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::GradientBoosting => "Gradient Boosting",
            ModelKind::Mlp => "MLP",
        }
    }

    /// Instantiate the model with its tuned default hyperparameters.
    ///
    /// Distance/kernel/gradient models are wrapped in a standard scaler,
    /// mirroring the scikit-learn pipelines the paper used.
    pub fn build(self) -> Box<dyn Regressor + Send + Sync> {
        match self {
            ModelKind::LinearLeastSquares => Box::new(LinearRegression::new()),
            ModelKind::Knn => Box::new(ScaledRegressor::new(KnnRegressor::paper_tuned())),
            ModelKind::SvrRbf => Box::new(ScaledRegressor::new(SvrRegressor::paper_tuned())),
            ModelKind::Ridge => Box::new(RidgeRegression::new(1.0)),
            ModelKind::DecisionTree => Box::new(DecisionTreeParams::default().build()),
            ModelKind::RandomForest => {
                Box::new(RandomForestRegressor::new(60, 12, 0).with_min_samples_leaf(2))
            }
            ModelKind::GradientBoosting => Box::new(GradientBoostingRegressor::new(150, 0.1, 3)),
            ModelKind::Mlp => Box::new(ScaledRegressor::new(
                MlpRegressor::new(vec![32, 16], Activation::Relu, 300, 0).with_learning_rate(0.01),
            )),
        }
    }

    /// Short CLI token of the model (`ffr estimate --models …`).
    pub fn cli_name(self) -> &'static str {
        match self {
            ModelKind::LinearLeastSquares => "linear",
            ModelKind::Knn => "knn",
            ModelKind::SvrRbf => "svr",
            ModelKind::Ridge => "ridge",
            ModelKind::DecisionTree => "tree",
            ModelKind::RandomForest => "forest",
            ModelKind::GradientBoosting => "boosting",
            ModelKind::Mlp => "mlp",
        }
    }

    /// Parse a CLI token produced by [`ModelKind::cli_name`].
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid tokens on an unknown name.
    pub fn parse_cli(name: &str) -> Result<ModelKind, String> {
        ModelKind::ALL
            .into_iter()
            .find(|k| k.cli_name() == name)
            .ok_or_else(|| {
                let names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.cli_name()).collect();
                format!(
                    "unknown model `{name}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }

    /// A small hyperparameter grid around the tuned defaults, capped at
    /// `budget` candidates — the paper runs an expensive random + grid
    /// search once per circuit (§III-A); the campaign CLI instead spends a
    /// fixed, small search budget per model so `ffr estimate` stays
    /// interactive. The tuned default is always the first candidate, and
    /// every candidate constructs with fixed seeds, so grid results are
    /// bit-identical across reruns.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn small_grid(self, budget: usize) -> Vec<ModelCandidate> {
        assert!(budget > 0, "grid budget must be positive");
        let mut grid = vec![ModelCandidate::new(self, "tuned-default", move || {
            self.build()
        })];
        match self {
            ModelKind::LinearLeastSquares => {}
            ModelKind::Knn => {
                for k in [5usize, 7] {
                    grid.push(ModelCandidate::new(self, format!("k={k}"), move || {
                        Box::new(ScaledRegressor::new(KnnRegressor::new(
                            k,
                            Distance::Manhattan,
                            WeightScheme::InverseDistance,
                        )))
                    }));
                }
            }
            ModelKind::SvrRbf => {
                for (c, gamma) in [(1.0, 0.055), (3.5, 0.2)] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("C={c} gamma={gamma}"),
                        move || {
                            Box::new(ScaledRegressor::new(SvrRegressor::new(
                                c,
                                0.025,
                                Kernel::Rbf { gamma },
                            )))
                        },
                    ));
                }
            }
            ModelKind::Ridge => {
                for alpha in [0.1, 10.0] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("alpha={alpha}"),
                        move || Box::new(RidgeRegression::new(alpha)),
                    ));
                }
            }
            ModelKind::DecisionTree => {
                for depth in [6usize, 18] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("max_depth={depth}"),
                        move || {
                            Box::new(
                                DecisionTreeParams {
                                    max_depth: depth,
                                    min_samples_leaf: 2,
                                }
                                .build(),
                            )
                        },
                    ));
                }
            }
            ModelKind::RandomForest => {
                for (trees, depth) in [(30usize, 8usize), (100, 12)] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("trees={trees} depth={depth}"),
                        move || {
                            Box::new(
                                RandomForestRegressor::new(trees, depth, 0)
                                    .with_min_samples_leaf(2),
                            )
                        },
                    ));
                }
            }
            ModelKind::GradientBoosting => {
                for (stages, lr, depth) in [(100usize, 0.1, 2usize), (200, 0.05, 3)] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("stages={stages} lr={lr} depth={depth}"),
                        move || Box::new(GradientBoostingRegressor::new(stages, lr, depth)),
                    ));
                }
            }
            ModelKind::Mlp => {
                for hidden in [vec![16usize], vec![64, 32]] {
                    grid.push(ModelCandidate::new(
                        self,
                        format!("hidden={hidden:?}"),
                        move || {
                            Box::new(ScaledRegressor::new(
                                MlpRegressor::new(hidden.clone(), Activation::Relu, 300, 0)
                                    .with_learning_rate(0.01),
                            ))
                        },
                    ));
                }
            }
        }
        grid.truncate(budget);
        grid
    }

    /// Fit this kind's tuned default model on `(x, y)` and predict
    /// `x_predict` — the fixed-seed [`ffr_ml::fit_predict`] facade indexed
    /// by model kind. Reruns are bit-identical.
    pub fn fit_predict(self, x: &[Vec<f64>], y: &[f64], x_predict: &[Vec<f64>]) -> Vec<f64> {
        ffr_ml::fit_predict(self.build(), x, y, x_predict)
    }

    /// k-NN hyperparameter grid used by the tuning experiment (§IV-B.2).
    pub fn knn_grid() -> Vec<KnnParams> {
        let mut grid = Vec::new();
        for k in [1usize, 2, 3, 5, 7, 11, 15] {
            for distance in [Distance::Manhattan, Distance::Euclidean] {
                for weights in [WeightScheme::Uniform, WeightScheme::InverseDistance] {
                    grid.push(KnnParams {
                        k,
                        distance,
                        weights,
                    });
                }
            }
        }
        grid
    }

    /// SVR hyperparameter grid around the paper's tuned point (§IV-B.3).
    pub fn svr_grid() -> Vec<SvrParams> {
        let mut grid = Vec::new();
        for c in [0.5, 1.0, 3.5, 10.0] {
            for gamma in [0.01, 0.055, 0.2, 1.0] {
                for epsilon in [0.01, 0.025, 0.1] {
                    grid.push(SvrParams { c, gamma, epsilon });
                }
            }
        }
        grid
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// One candidate of a [`ModelKind::small_grid`]: a labelled constructor
/// for a model with specific hyperparameters, usable as the parameter type
/// of [`ffr_ml::model_selection::grid_search`].
#[derive(Clone)]
pub struct ModelCandidate {
    kind: ModelKind,
    label: String,
    build: std::sync::Arc<dyn Fn() -> Box<dyn Regressor + Send + Sync> + Send + Sync>,
}

impl ModelCandidate {
    fn new(
        kind: ModelKind,
        label: impl Into<String>,
        build: impl Fn() -> Box<dyn Regressor + Send + Sync> + Send + Sync + 'static,
    ) -> ModelCandidate {
        ModelCandidate {
            kind,
            label: label.into(),
            build: std::sync::Arc::new(build),
        }
    }

    /// The model kind this candidate belongs to.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Human-readable hyperparameter description.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Instantiate a fresh, unfitted model.
    pub fn build(&self) -> Box<dyn Regressor + Send + Sync> {
        (self.build)()
    }
}

impl std::fmt::Debug for ModelCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelCandidate({} / {})", self.kind, self.label)
    }
}

/// k-NN hyperparameters for search experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KnnParams {
    /// Number of neighbors.
    pub k: usize,
    /// Distance metric.
    pub distance: Distance,
    /// Weighting scheme.
    pub weights: WeightScheme,
}

impl KnnParams {
    /// Build the (scaled) model.
    pub fn build(self) -> ScaledRegressor<KnnRegressor> {
        ScaledRegressor::new(KnnRegressor::new(self.k, self.distance, self.weights))
    }
}

/// SVR hyperparameters for search experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvrParams {
    /// Penalty C.
    pub c: f64,
    /// RBF width γ.
    pub gamma: f64,
    /// Tube width ε.
    pub epsilon: f64,
}

impl SvrParams {
    /// Build the (scaled) model.
    pub fn build(self) -> ScaledRegressor<SvrRegressor> {
        ScaledRegressor::new(SvrRegressor::new(
            self.c,
            self.epsilon,
            Kernel::Rbf { gamma: self.gamma },
        ))
    }
}

/// Decision-tree hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionTreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 12,
            min_samples_leaf: 2,
        }
    }
}

impl DecisionTreeParams {
    /// Build the tree.
    pub fn build(self) -> ffr_ml::DecisionTreeRegressor {
        ffr_ml::DecisionTreeRegressor::new(self.max_depth, 2, self.min_samples_leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_builds_and_fits() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 0.1 + r[1]).min(1.0)).collect();
        for kind in ModelKind::ALL {
            let mut m = kind.build();
            m.fit(&x, &y);
            let p = m.predict_one(&x[0]);
            assert!(p.is_finite(), "{kind}: non-finite prediction");
        }
    }

    #[test]
    fn grids_contain_paper_points() {
        let knn = ModelKind::knn_grid();
        assert!(knn.iter().any(|p| p.k == 3
            && p.distance == Distance::Manhattan
            && p.weights == WeightScheme::InverseDistance));
        let svr = ModelKind::svr_grid();
        assert!(svr
            .iter()
            .any(|p| p.c == 3.5 && p.gamma == 0.055 && p.epsilon == 0.025));
    }

    #[test]
    fn cli_names_round_trip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse_cli(kind.cli_name()), Ok(kind));
        }
        assert!(ModelKind::parse_cli("perceptron").is_err());
    }

    #[test]
    fn small_grids_build_and_respect_budget() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| (r[0] * 0.1 + r[1] * 0.2).min(1.0))
            .collect();
        for kind in ModelKind::ALL {
            let grid = kind.small_grid(3);
            assert!(!grid.is_empty() && grid.len() <= 3, "{kind}");
            assert_eq!(grid[0].label(), "tuned-default");
            for candidate in &grid {
                assert_eq!(candidate.kind(), kind);
                let mut model = candidate.build();
                model.fit(&x, &y);
                assert!(model.predict_one(&x[0]).is_finite(), "{candidate:?}");
            }
            // A budget of one keeps only the tuned default.
            assert_eq!(kind.small_grid(1).len(), 1);
        }
    }

    #[test]
    fn fit_predict_is_deterministic_per_kind() {
        let x: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 0.2).min(1.0)).collect();
        let px: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![4.0, 0.0]];
        for kind in [ModelKind::RandomForest, ModelKind::Mlp, ModelKind::Knn] {
            let a = kind.fit_predict(&x, &y, &px);
            let b = kind.fit_predict(&x, &y, &px);
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn display_names_match_table_one() {
        assert_eq!(
            ModelKind::LinearLeastSquares.to_string(),
            "Linear Least Squares"
        );
        assert_eq!(ModelKind::Knn.to_string(), "k-NN");
        assert_eq!(ModelKind::SvrRbf.to_string(), "SVR w/ RBF Kernel");
    }
}
