//! Evaluation protocol and text reports reproducing the paper's Table I
//! and Figures 2–4.

use crate::dataset::ReferenceDataset;
use crate::models::ModelKind;
use ffr_ml::metrics::RegressionScores;
use ffr_ml::model_selection::{
    cross_validate, learning_curve, take, LearningCurvePoint, StratifiedKFold,
};
use ffr_ml::Regressor;
use std::fmt;

/// The paper's cross-validation protocol: `cv_folds`-fold *stratified*
/// cross-validation where each fold's model is trained on `training_size`
/// (a fraction of the **whole dataset**) drawn from the fold's training
/// split.
fn folds_with_training_size(
    y: &[f64],
    cv_folds: usize,
    training_size: f64,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(
        training_size > 0.0 && training_size < 1.0,
        "training size must be in (0,1)"
    );
    let n = y.len();
    let target = ((n as f64) * training_size).round() as usize;
    StratifiedKFold::new(cv_folds, seed)
        .split(y)
        .into_iter()
        .enumerate()
        .map(|(fold, (mut train, test))| {
            // The split returns train indices in index order; a seeded
            // shuffle before truncation yields an unbiased random subset
            // of the requested size (the folds stay leakage-free).
            use rand::seq::SliceRandom;
            use rand_chacha::rand_core::SeedableRng;
            let mut rng =
                rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ ((fold as u64) << 20) ^ 0x51);
            train.shuffle(&mut rng);
            train.truncate(target.clamp(2, train.len()));
            (train, test)
        })
        .collect()
}

/// Evaluate one model under the paper's protocol (§IV-B: CV = 10,
/// training size = 50 %), returning the mean test-fold scores — one row of
/// Table I.
pub fn evaluate_model(
    kind: ModelKind,
    dataset: &ReferenceDataset,
    cv_folds: usize,
    training_size: f64,
    seed: u64,
) -> RegressionScores {
    let x = dataset.x();
    let folds = folds_with_training_size(dataset.y(), cv_folds, training_size, seed);
    cross_validate(|| kind.build(), &x, dataset.y(), &folds).mean_test()
}

/// A rendered model-comparison table (the paper's Table I).
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// `(model, mean test scores)` rows in evaluation order.
    pub rows: Vec<(ModelKind, RegressionScores)>,
    /// Protocol echo: folds.
    pub cv_folds: usize,
    /// Protocol echo: training size.
    pub training_size: f64,
}

/// Evaluate several models under the identical protocol (Table I).
pub fn compare_models(
    kinds: &[ModelKind],
    dataset: &ReferenceDataset,
    cv_folds: usize,
    training_size: f64,
    seed: u64,
) -> ModelComparison {
    let rows = kinds
        .iter()
        .map(|&k| (k, evaluate_model(k, dataset, cv_folds, training_size, seed)))
        .collect();
    ModelComparison {
        rows,
        cv_folds,
        training_size,
    }
}

impl fmt::Display for ModelComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PERFORMANCE RESULTS FOR DIFFERENT REGRESSION MODELS (cross validation = {}, training size = {:.0} %)",
            self.cv_folds,
            self.training_size * 100.0
        )?;
        writeln!(
            f,
            "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "Model", "MAE", "MAX", "RMSE", "EV", "R2"
        )?;
        for (kind, s) in &self.rows {
            writeln!(
                f,
                "{:<22} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                kind.display_name(),
                s.mae,
                s.max,
                s.rmse,
                s.ev,
                s.r2
            )?;
        }
        Ok(())
    }
}

/// The data behind one of the paper's Figs. 2a/3a/4a: true vs predicted
/// FDR on an example fold, for both the training and the test split.
#[derive(Debug, Clone)]
pub struct PredictionReport {
    /// Model under report.
    pub kind: ModelKind,
    /// `(true, predicted)` on the training split, sorted by true FDR.
    pub train: Vec<(f64, f64)>,
    /// `(true, predicted)` on the test split, sorted by true FDR.
    pub test: Vec<(f64, f64)>,
    /// Scores on the test split.
    pub test_scores: RegressionScores,
}

/// Fit the model on one example fold (the paper's "example test data
/// fold") and record the per-flip-flop predictions of Figs. 2a/3a/4a.
pub fn prediction_report(
    kind: ModelKind,
    dataset: &ReferenceDataset,
    training_size: f64,
    seed: u64,
) -> PredictionReport {
    let x = dataset.x();
    let y = dataset.y();
    let folds = folds_with_training_size(y, 2, training_size, seed);
    let (train_idx, test_idx) = &folds[0];
    let (tx, ty) = take(&x, y, train_idx);
    let (vx, vy) = take(&x, y, test_idx);
    let mut model = kind.build();
    model.fit(&tx, &ty);
    let tp = model.predict(&tx);
    let vp = model.predict(&vx);
    let test_scores = RegressionScores::compute(&vy, &vp);

    let mut train: Vec<(f64, f64)> = ty.into_iter().zip(tp).collect();
    train.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut test: Vec<(f64, f64)> = vy.into_iter().zip(vp).collect();
    test.sort_by(|a, b| a.0.total_cmp(&b.0));
    PredictionReport {
        kind,
        train,
        test,
        test_scores,
    }
}

impl fmt::Display for PredictionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Prediction report — {}", self.kind)?;
        writeln!(f, "test-split scores: {}", self.test_scores)?;
        writeln!(
            f,
            "{:<6} {:>10} {:>10} {:>10}",
            "idx", "true", "pred", "error"
        )?;
        for (set, rows) in [("train", &self.train), ("test", &self.test)] {
            writeln!(f, "-- {set} split ({} flip-flops)", rows.len())?;
            for (i, (t, p)) in rows.iter().enumerate() {
                writeln!(f, "{i:<6} {t:>10.4} {p:>10.4} {:>10.4}", p - t)?;
            }
        }
        Ok(())
    }
}

/// A learning curve (Figs. 2b/3b/4b): train/test R² as a function of the
/// fraction of data used for training.
#[derive(Debug, Clone)]
pub struct LearningCurveReport {
    /// Model under report.
    pub kind: ModelKind,
    /// Curve points in ascending fraction order.
    pub points: Vec<LearningCurvePoint>,
}

/// Compute the learning curve for a model under `cv_folds`-fold stratified
/// cross-validation. `fractions` are fractions of the **whole dataset**
/// (the paper sweeps ~10–90 %).
pub fn model_learning_curve(
    kind: ModelKind,
    dataset: &ReferenceDataset,
    fractions: &[f64],
    cv_folds: usize,
    seed: u64,
) -> LearningCurveReport {
    let x = dataset.x();
    let y = dataset.y();
    let folds = StratifiedKFold::new(cv_folds, seed).split(y);
    // ffr-ml's learning_curve interprets fractions relative to the fold
    // train split; rescale so callers think in whole-dataset terms.
    let train_len = folds[0].0.len() as f64;
    let n = y.len() as f64;
    let rescaled: Vec<f64> = fractions
        .iter()
        .map(|f| (f * n / train_len).min(1.0))
        .collect();
    let mut points = learning_curve(|| kind.build(), &x, y, &rescaled, &folds, seed);
    for (p, &orig) in points.iter_mut().zip(fractions) {
        p.train_fraction = orig;
    }
    LearningCurveReport { kind, points }
}

impl fmt::Display for LearningCurveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Learning curve — {}", self.kind)?;
        writeln!(
            f,
            "{:>12} {:>12} {:>12}",
            "train_frac", "train_R2", "test_R2"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>12.2} {:>12.3} {:>12.3}",
                p.train_fraction, p.train_r2, p.test_r2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_features::FeatureMatrix;

    /// A synthetic dataset whose FDR is a non-linear function of two
    /// features, mimicking the paper's setting at unit-test scale.
    fn synthetic(n: usize) -> ReferenceDataset {
        let names: Vec<String> = vec!["f0".into(), "f1".into(), "f2".into()];
        let ffs: Vec<String> = (0..n).map(|i| format!("ff{i}")).collect();
        let mut features = FeatureMatrix::zeros(ffs, names);
        let mut fdr = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i * 37) % 101) as f64 / 101.0;
            let b = ((i * 53) % 97) as f64 / 97.0;
            let c = ((i * 11) % 89) as f64 / 89.0; // noise feature
            features.set(i, 0, a);
            features.set(i, 1, b);
            features.set(i, 2, c);
            // Non-linear target in [0, 1].
            fdr.push(((a * b * 2.5).min(1.0) * (0.5 + 0.5 * (3.0 * a).sin().abs())).min(1.0));
        }
        ReferenceDataset {
            features,
            fdr,
            injections_per_ff: 0,
        }
    }

    #[test]
    fn nonlinear_models_beat_linear_like_the_paper() {
        let ds = synthetic(300);
        let cmp = compare_models(&ModelKind::PAPER, &ds, 5, 0.5, 42);
        let r2 = |k: ModelKind| {
            cmp.rows
                .iter()
                .find(|(m, _)| *m == k)
                .map(|(_, s)| s.r2)
                .expect("model present")
        };
        let lin = r2(ModelKind::LinearLeastSquares);
        let knn = r2(ModelKind::Knn);
        let svr = r2(ModelKind::SvrRbf);
        assert!(knn > lin, "knn {knn} must beat linear {lin}");
        assert!(svr > lin, "svr {svr} must beat linear {lin}");
        let table = cmp.to_string();
        assert!(table.contains("Linear Least Squares"));
        assert!(table.contains("SVR w/ RBF Kernel"));
    }

    #[test]
    fn prediction_report_is_sorted_and_complete() {
        let ds = synthetic(120);
        let rep = prediction_report(ModelKind::Knn, &ds, 0.5, 3);
        assert_eq!(rep.train.len() + rep.test.len(), 120);
        assert!(rep.train.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(rep.test.windows(2).all(|w| w[0].0 <= w[1].0));
        let text = rep.to_string();
        assert!(text.contains("test split"));
    }

    #[test]
    fn learning_curve_flattens() {
        let ds = synthetic(250);
        let rep = model_learning_curve(ModelKind::Knn, &ds, &[0.1, 0.3, 0.5, 0.7, 0.9], 5, 7);
        assert_eq!(rep.points.len(), 5);
        // Test score at 50 % should be close to the score at 90 % —
        // the paper's central cost-saving observation.
        let at = |frac: f64| {
            rep.points
                .iter()
                .find(|p| (p.train_fraction - frac).abs() < 1e-9)
                .expect("point exists")
                .test_r2
        };
        assert!(at(0.9) - at(0.5) < 0.1, "curve must flatten: {rep}");
        assert!(at(0.5) > at(0.1) - 0.05, "more data helps early on");
    }

    #[test]
    fn training_size_protocol_truncates_folds() {
        let ds = synthetic(100);
        let folds = folds_with_training_size(ds.y(), 5, 0.3, 1);
        for (train, test) in &folds {
            assert_eq!(train.len(), 30);
            assert_eq!(test.len(), 20);
        }
    }
}
