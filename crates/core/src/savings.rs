//! Campaign cost-reduction analysis (the paper's concluding 2×–5× claim).
//!
//! The learning curves show the model quality as a function of the
//! training size; this module turns them into the paper's headline
//! numbers: training on 50 % of the flip-flops halves the campaign cost at
//! (essentially) no accuracy loss, and 20 % training gives a 5× reduction
//! at a small accuracy penalty.
//!
//! The same accuracy-vs-cost framing applies to **stopping policies**:
//! a Wilson-CI early-stopping campaign spends fewer injections than the
//! paper's fixed-170 rule for a bounded accuracy loss. [`PolicyCostRow`]
//! and [`policy_cost_table`] fold per-policy sweep results (from
//! `ffr-bench --bin policy_study`) into the same report shape.

use ffr_ml::model_selection::LearningCurvePoint;

/// One row of the cost/accuracy trade-off table.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsRow {
    /// Fraction of flip-flops fault-injected.
    pub train_fraction: f64,
    /// Campaign cost reduction vs a full flat campaign (`1 / fraction`).
    pub cost_reduction: f64,
    /// Mean test R² at this training size.
    pub test_r2: f64,
    /// R² loss relative to the best point on the curve.
    pub r2_loss: f64,
}

/// Build the trade-off table from a learning curve.
pub fn savings_table(points: &[LearningCurvePoint]) -> Vec<SavingsRow> {
    let best = points
        .iter()
        .map(|p| p.test_r2)
        .fold(f64::NEG_INFINITY, f64::max);
    points
        .iter()
        .map(|p| SavingsRow {
            train_fraction: p.train_fraction,
            cost_reduction: 1.0 / p.train_fraction,
            test_r2: p.test_r2,
            r2_loss: best - p.test_r2,
        })
        .collect()
}

/// The largest cost reduction whose R² loss stays within `tolerance` of
/// the best point (the paper's "up-to-5× for <10 % accuracy loss").
pub fn max_cost_reduction(points: &[LearningCurvePoint], tolerance: f64) -> Option<SavingsRow> {
    savings_table(points)
        .into_iter()
        .filter(|r| r.r2_loss <= tolerance)
        .max_by(|a, b| a.cost_reduction.total_cmp(&b.cost_reduction))
}

/// Render the table.
pub fn render(rows: &[SavingsRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>16} {:>10} {:>10}",
        "train_frac", "cost_reduction", "test_R2", "R2_loss"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>12.2} {:>15.1}x {:>10.3} {:>10.3}",
            r.train_fraction, r.cost_reduction, r.test_r2, r.r2_loss
        );
    }
    out
}

/// One stopping policy's accuracy-vs-cost outcome, relative to a
/// reference policy (the paper's fixed-170 rule).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCostRow {
    /// Canonical policy spec (`fixed:170`, `wilson:0.05@95:64..170`, …).
    pub policy: String,
    /// Injections this policy spent.
    pub injections: usize,
    /// Campaign cost reduction vs the reference policy
    /// (`reference injections / injections`).
    pub cost_reduction: f64,
    /// Injections saved vs the reference, as a fraction in [-∞, 1).
    pub saved_fraction: f64,
    /// Absolute circuit-FFR deviation from the reference policy's result.
    pub ffr_delta: f64,
}

/// Fold per-policy sweep measurements `(spec, injections, |ΔFFR|)` into
/// cost rows against `reference_injections` (the fixed-policy spend).
///
/// # Panics
///
/// Panics if `reference_injections` is zero.
pub fn policy_cost_table<'a>(
    reference_injections: usize,
    measurements: impl IntoIterator<Item = (&'a str, usize, f64)>,
) -> Vec<PolicyCostRow> {
    assert!(reference_injections > 0, "reference campaign spent nothing");
    let reference = reference_injections as f64;
    measurements
        .into_iter()
        .map(|(policy, injections, ffr_delta)| PolicyCostRow {
            policy: policy.to_string(),
            injections,
            cost_reduction: reference / injections.max(1) as f64,
            saved_fraction: 1.0 - injections as f64 / reference,
            ffr_delta: ffr_delta.abs(),
        })
        .collect()
}

/// Render the policy cost table.
pub fn render_policy_table(rows: &[PolicyCostRow]) -> String {
    use std::fmt::Write as _;
    let width = rows
        .iter()
        .map(|r| r.policy.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<width$} {:>12} {:>10} {:>8} {:>10}",
        "policy", "injections", "saved", "cost", "|dFFR|"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<width$} {:>12} {:>9.1}% {:>7.2}x {:>10.4}",
            r.policy,
            r.injections,
            r.saved_fraction * 100.0,
            r.cost_reduction,
            r.ffr_delta
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffr_ml::metrics::RegressionScores;

    fn point(frac: f64, r2: f64) -> LearningCurvePoint {
        let s = RegressionScores {
            mae: 0.0,
            max: 0.0,
            rmse: 0.0,
            ev: r2,
            r2,
        };
        LearningCurvePoint {
            train_fraction: frac,
            train_r2: r2 + 0.05,
            test_r2: r2,
            train_scores: s,
            test_scores: s,
        }
    }

    #[test]
    fn table_and_selection() {
        // A saturating curve: 0.2 -> 0.78, 0.5 -> 0.84, 0.9 -> 0.85.
        let pts = vec![point(0.2, 0.78), point(0.5, 0.84), point(0.9, 0.85)];
        let table = savings_table(&pts);
        assert_eq!(table.len(), 3);
        assert!((table[0].cost_reduction - 5.0).abs() < 1e-9);
        assert!((table[1].cost_reduction - 2.0).abs() < 1e-9);
        // Tight tolerance picks 2x, loose tolerance 5x — the paper's two
        // headline numbers.
        let tight = max_cost_reduction(&pts, 0.02).unwrap();
        assert!((tight.cost_reduction - 2.0).abs() < 1e-9);
        let loose = max_cost_reduction(&pts, 0.10).unwrap();
        assert!((loose.cost_reduction - 5.0).abs() < 1e-9);
        let text = render(&table);
        assert!(text.contains("5.0x"));
    }

    #[test]
    fn policy_cost_rows_fold_against_the_reference() {
        let rows = policy_cost_table(
            128_180,
            [
                ("fixed:170", 128_180usize, 0.0),
                ("wilson:0.05@95:64..170", 83_742, -0.0091),
                ("wilson:0.02@99:64..340", 189_288, 0.0071),
            ],
        );
        assert_eq!(rows.len(), 3);
        assert!((rows[0].cost_reduction - 1.0).abs() < 1e-12);
        assert!((rows[0].saved_fraction).abs() < 1e-12);
        // The Wilson policy saves ~34.7 % and reports |ΔFFR|.
        assert!(rows[1].saved_fraction > 0.30 && rows[1].saved_fraction < 0.40);
        assert!(rows[1].cost_reduction > 1.5);
        assert!((rows[1].ffr_delta - 0.0091).abs() < 1e-12, "delta is |·|");
        // A tighter-than-reference policy costs more: negative savings.
        assert!(rows[2].saved_fraction < 0.0);
        assert!(rows[2].cost_reduction < 1.0);
        let text = render_policy_table(&rows);
        assert!(text.contains("wilson:0.05@95:64..170"), "{text}");
        assert!(text.contains('%'), "{text}");
    }

    #[test]
    #[should_panic(expected = "reference campaign spent nothing")]
    fn zero_reference_injections_panics() {
        let _ = policy_cost_table(0, []);
    }

    #[test]
    fn no_point_within_tolerance() {
        let pts = vec![point(0.1, 0.2), point(0.9, 0.9)];
        let r = max_cost_reduction(&pts, 0.05).unwrap();
        assert!((r.cost_reduction - 1.0 / 0.9).abs() < 1e-9);
    }
}
