//! Minimal in-repo substitute for `proptest`: deterministic random
//! property testing without shrinking.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, range strategies, [`any`], [`collection::vec`], `Just`, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each test function runs `cases` iterations with an RNG seeded from the
//! case index, so failures are reproducible run-to-run. There is no
//! shrinking: the failing inputs are reported as-is via the panic message
//! (strategies feed through `Debug`-printable values).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG driving test-case generation.
pub type TestRng = ChaCha8Rng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Build the RNG for one test case (deterministic in the case index).
pub fn test_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0xFF2_CA5E_u64 ^ ((case as u64) << 32) ^ case as u64)
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; property tests here want usable numbers.
        rng.gen_range(-1e12f64..1e12)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Strategy producing unconstrained values of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vector of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (panics with the inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skip the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_rng(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __run = || $body;
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0f64..1.0, v in collection::vec(1usize..4, 2..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
