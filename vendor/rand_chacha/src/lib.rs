//! Minimal in-repo substitute for `rand_chacha`: a real ChaCha8 stream
//! cipher used as a deterministic RNG.
//!
//! The keystream is a faithful ChaCha implementation (8 double-rounds),
//! but the word-consumption order is this crate's own, so streams are not
//! bit-compatible with upstream `rand_chacha`. All workspace
//! reproducibility guarantees are internal and this crate keeps them:
//! the same seed always yields the same stream.

use rand::{RngCore, SeedableRng};

/// Re-export point matching `rand_chacha::rand_core::SeedableRng` imports.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 8;

/// A ChaCha8-based deterministic random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.index] as u64;
        let hi = self.block[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
