//! Minimal in-repo substitute for `serde_json`: a JSON emitter and a
//! recursive-descent parser over the vendored serde [`Value`] tree.
//!
//! Output is deterministic: object keys keep the order the `Serialize`
//! impl produced them in, and numbers are printed with Rust's shortest
//! round-trippable float formatting. The artifact store depends on this
//! determinism for byte-identical cache artifacts.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialize a value to a compact JSON string.
///
/// # Errors
///
/// Never fails in this implementation; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails in this implementation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

/// Parse a JSON string into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // "1" would round-trip as an integer; keep the float marker.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no non-finite numbers; null is the least-bad encoding.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected `{}` at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::msg(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::msg("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0b1100_0000 == 0b1000_0000 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::msg("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u64>()
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
            .and_then(|n| {
                i64::try_from(n)
                    .map(|n| Value::I64(-n))
                    .map_err(|_| Error::msg("integer out of range"))
            })
    } else {
        text.parse::<u64>()
            .map(Value::U64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);
        let t: Vec<(String, usize)> = vec![("a".into(), 1), ("b".into(), 2)];
        let s = to_string_pretty(&t).unwrap();
        assert_eq!(from_str::<Vec<(String, usize)>>(&s).unwrap(), t);
    }

    #[test]
    fn float_markers_preserved() {
        let s = to_string(&vec![1.0f64, 0.5]).unwrap();
        assert_eq!(s, "[1.0,0.5]");
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), vec![1.0, 0.5]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
