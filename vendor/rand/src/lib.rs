//! Minimal in-repo substitute for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what the workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The streams are high-quality (the workspace's generator of record is
//! the vendored ChaCha8 in `rand_chacha`) but are **not** bit-compatible
//! with the upstream crates; all reproducibility guarantees in this
//! workspace are internal.

use std::ops::{Range, RangeInclusive};

/// Core uniform-random-word source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 like upstream rand.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`hi` inclusive iff `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Lemire multiply-shift; bias is < 2^-64 per draw.
                let r = rng.next_u64() as u128;
                let offset = (r * span) >> 64;
                (lo_w + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "invalid float range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + ((hi - lo) as f64 * u) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_range(rng, 0usize, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleUniform::sample_range(rng, 0usize, self.len(), false);
                self.get(i)
            }
        }
    }
}

/// `rand::prelude`-style glob import support.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
