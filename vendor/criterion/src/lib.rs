//! Minimal in-repo substitute for `criterion`.
//!
//! Runs each benchmark a small, fixed number of iterations and prints the
//! mean wall-clock time — enough to compare hot paths release-to-release
//! without the statistical machinery (which is unavailable offline).
//!
//! Set `CRITERION_SAMPLES` to raise the per-benchmark iteration count
//! (default 3; the first iteration is treated as warm-up and discarded
//! when more than one sample is taken).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: u32,
    mean: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut total = Duration::ZERO;
        let mut counted = 0u32;
        for i in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            // Discard the warm-up iteration when we have the budget.
            if i > 0 || self.samples == 1 {
                total += dt;
                counted += 1;
            }
        }
        self.mean = total / counted.max(1);
    }
}

fn samples_from_env() -> u32 {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("   {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!("   {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench: {label:<50} {mean:>12.2?}{rate}");
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stub's
    /// iteration count comes from `CRITERION_SAMPLES`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: samples_from_env(),
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.name),
            b.mean,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: samples_from_env(),
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.mean,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply command-line configuration (no-op in the stub; tolerates the
    /// arguments `cargo bench` forwards).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: samples_from_env(),
            mean: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.mean, None);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
