//! Minimal in-repo substitute for `rayon`: `par_iter().map(..).collect()`
//! over slices, executed on scoped OS threads with an atomic work cursor.
//!
//! Only the surface the workspace uses is provided. Work distribution is
//! dynamic (each thread pops the next index), so uneven per-item cost —
//! the norm for fault-injection batches with early convergence exit —
//! still load-balances, which is the property the campaign engine
//! actually wants from rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Borrowing conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Item type yielded by the parallel iterator.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;

    /// Map every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        ParMap { inner: self, f }
    }

    /// Collect the items into a container.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self::Item: Send,
        Self: IndexedParallel,
    {
        C::from_par_iter(self)
    }
}

/// Internal: parallel sources that can be evaluated by index.
pub trait IndexedParallel: ParallelIterator + Sync {
    /// Number of items.
    fn par_len(&self) -> usize;
    /// Produce item `i`.
    fn par_get(&self, i: usize) -> Self::Item;
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;
}

impl<'data, T: Sync> IndexedParallel for ParIter<'data, T> {
    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn par_get(&self, i: usize) -> &'data T {
        &self.items[i]
    }
}

/// Mapped parallel iterator.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
}

impl<I, F, R> IndexedParallel for ParMap<I, F>
where
    I: IndexedParallel + Sync,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn par_get(&self, i: usize) -> R {
        (self.f)(self.inner.par_get(i))
    }
}

/// Containers a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Evaluate the iterator in parallel and gather the results.
    fn from_par_iter<I: IndexedParallel<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: IndexedParallel<Item = T>>(iter: I) -> Vec<T> {
        let n = iter.par_len();
        let threads = current_num_threads().min(n.max(1));
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = iter.par_get(i);
                    results.lock().expect("results poisoned").push((i, item));
                });
            }
        });
        let mut results = results.into_inner().expect("results poisoned");
        results.sort_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, item)| item).collect()
    }
}

/// `rayon::prelude`-style glob import support.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
