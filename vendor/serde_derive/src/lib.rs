//! Derive macros for the in-repo `serde` substitute.
//!
//! Supports the shapes the workspace actually derives:
//!
//! * structs with named fields → JSON objects with insertion-ordered keys,
//! * newtype structs (`struct Id(u32)`) → transparent (the inner value),
//! * tuple structs with 2+ fields → arrays,
//! * enums whose variants are all fieldless → variant-name strings.
//!
//! The macros are written against `proc_macro` alone (no `syn`/`quote`,
//! which are unavailable offline): the input item is tokenized by hand and
//! the impl is assembled as a string, then re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Strip leading attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...) from the token slice.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                pos += 1; // '#'
                if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    pos += 1;
                }
            }
            Some(tt) if is_ident(tt, "pub") => {
                pos += 1;
                if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    pos += 1;
                }
            }
            _ => return pos,
        }
    }
}

/// Split a field/variant list on top-level commas. Commas inside groups are
/// invisible (groups are atomic tokens); commas inside generic argument
/// lists are skipped by tracking `<`/`>` depth.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for part in split_top_level(&body) {
                    let p = skip_attrs_and_vis(&part, 0);
                    match part.get(p) {
                        Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
                        None => {}
                        other => return Err(format!("expected field name, got {other:?}")),
                    }
                }
                Ok(Input {
                    name,
                    shape: Shape::Named(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let n = split_top_level(&body)
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .count();
                Ok(Input {
                    name,
                    shape: Shape::Tuple(n),
                })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for part in split_top_level(&body) {
                    let p = skip_attrs_and_vis(&part, 0);
                    match part.get(p) {
                        Some(TokenTree::Ident(i)) => {
                            if part.get(p + 1).is_some() {
                                return Err(format!(
                                    "enum `{name}`: only fieldless variants are supported"
                                ));
                            }
                            variants.push(i.to_string());
                        }
                        None => {}
                        other => return Err(format!("expected variant name, got {other:?}")),
                    }
                }
                Ok(Input {
                    name,
                    shape: Shape::UnitEnum(variants),
                })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "::serde::Value::Str(match self {{ {} }}.to_string())",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_index(v, {i})?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "match v.as_str().ok_or_else(|| ::serde::Error::msg(\"expected variant string\"))? {{\n\
                     {},\n\
                     other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}`\")))\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<{name}, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
