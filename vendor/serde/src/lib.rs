//! Minimal in-repo substitute for the `serde` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of serde it actually uses: a
//! self-describing value tree ([`Value`]), [`Serialize`] / [`Deserialize`]
//! traits that convert to and from that tree, and derive macros for plain
//! structs and fieldless enums (re-exported from `serde_derive`).
//!
//! The design intentionally trades serde's zero-copy streaming model for a
//! tiny, dependency-free implementation; every serialization goes through
//! an owned [`Value`]. Object keys keep insertion order, which makes the
//! JSON emitted by `serde_json` deterministic — a property the artifact
//! store relies on for byte-identical cache hits.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of deserialized data (the subset of the JSON
/// data model the workspace needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// A raw value tree serializes as itself, so hand-assembled documents
// (e.g. the ffrd service's ad-hoc JSON responses) go through the same
// writer as derived types.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| Error::msg("integer out of range"))?
                    }
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, got {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    ref other => Err(Error::msg(format!(
                        "expected number, got {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($name::from_value(
                    items.get($idx).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

// ---------------------------------------------------------------------------
// Helpers used by the derive macros
// ---------------------------------------------------------------------------

/// Deserialize a named field of an object value (derive-macro helper).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let field = v
        .get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
    T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
}

/// Deserialize the `i`-th element of an array value (derive-macro helper).
pub fn de_index<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::msg(format!("expected array, got {}", v.type_name())))?;
    let item = items
        .get(i)
        .ok_or_else(|| Error::msg(format!("missing tuple element {i}")))?;
    T::from_value(item)
}
