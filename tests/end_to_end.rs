//! End-to-end integration: circuit → campaign → features → models →
//! estimation flow, at small scale.

use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, TrafficConfig};
use ffr_core::{compare_models, EstimationFlow, FlowConfig, ModelKind, ReferenceDataset};
use ffr_fault::CampaignConfig;
use ffr_ml::metrics;
use ffr_sim::GoldenRun;

fn small_dataset(injections: usize, seed: u64) -> (ReferenceDataset, std::ops::Range<u64>) {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(injections)
        .with_seed(seed);
    let ds = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});
    (ds, tb.injection_window())
}

#[test]
fn nonlinear_models_beat_linear_on_real_fault_data() {
    // 24 injections per FF: enough resolution in the reference FDR values
    // for the model-quality gap to clear the asserted margin reliably.
    let (ds, _) = small_dataset(24, 1);
    let cmp = compare_models(
        &[ModelKind::LinearLeastSquares, ModelKind::Knn],
        &ds,
        5,
        0.5,
        42,
    );
    let lin = cmp.rows[0].1;
    let knn = cmp.rows[1].1;
    assert!(
        knn.r2 > lin.r2 + 0.1,
        "paper's central claim must hold: knn {} vs linear {}",
        knn.r2,
        lin.r2
    );
    assert!(
        knn.r2 > 0.5,
        "knn should be usefully predictive: {}",
        knn.r2
    );
    assert!(knn.mae < lin.mae, "knn should also win on MAE");
}

#[test]
fn estimation_flow_approximates_full_campaign() {
    // Reference: a full campaign. Estimate: inject only 40 % and predict.
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(16)
        .with_seed(2);
    let reference = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});

    let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
    let est = flow.estimate(
        ModelKind::Knn,
        &FlowConfig {
            training_fraction: 0.4,
            injections_per_ff: 16,
            window: tb.injection_window(),
            seed: 2,
        },
    );

    // The mixed measured+predicted values must correlate with the full
    // campaign far better than a constant predictor (R² > 0).
    let r2 = metrics::r2(reference.y(), &est.values());
    assert!(r2 > 0.5, "estimation flow r2 vs full campaign = {r2}");

    // And the flow spent well under half the injections of the full
    // campaign (the paper's cost argument).
    let full_cost = cc.num_ffs() * 16;
    assert!(est.injections_spent() * 2 < full_cost + cc.num_ffs());
}

#[test]
fn predicted_circuit_fdr_close_to_measured() {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor, &golden);
    let config = CampaignConfig::new(tb.injection_window())
        .with_injections(12)
        .with_seed(5);
    let reference = ReferenceDataset::collect(&cc, &tb, &watch, &judge, &config, |_, _| {});
    let measured_fdr = reference.y().iter().sum::<f64>() / reference.len() as f64;

    let flow = EstimationFlow::new(&cc, &tb, &watch, &judge);
    let est = flow.estimate(
        ModelKind::DecisionTree,
        &FlowConfig {
            training_fraction: 0.3,
            injections_per_ff: 12,
            window: tb.injection_window(),
            seed: 5,
        },
    );
    let err = (est.circuit_fdr() - measured_fdr).abs();
    assert!(
        err < 0.08,
        "circuit-level FDR estimate off by {err} ({} vs {measured_fdr})",
        est.circuit_fdr()
    );
}

#[test]
fn feature_matrix_aligns_with_fdr_table() {
    let (ds, _) = small_dataset(8, 9);
    assert_eq!(ds.features.num_rows(), ds.fdr.len());
    assert_eq!(ds.features.num_cols(), 25);
    // Feature values are finite; FDR within [0,1].
    for r in 0..ds.features.num_rows() {
        for c in 0..ds.features.num_cols() {
            assert!(ds.features.get(r, c).is_finite());
        }
    }
    assert!(ds.y().iter().all(|v| (0.0..=1.0).contains(v)));
    // Row names follow netlist FF order (spot-check the first row).
    assert!(ds.features.ff_names()[0].contains("_reg"));
}
