//! Deliberate failure injection: verify the MAC judge sees exactly the
//! failures we manufacture in the output traces.

use ffr_circuits::{Mac10geConfig, MacJudge, MacTestbench, PacketExtractor, TrafficConfig};
use ffr_fault::{FailureClass, FailureJudge};
use ffr_sim::{CompiledCircuit, GoldenRun, LaneView, OutputTrace, WatchList};

struct Setup {
    golden: GoldenRun,
    judge: MacJudge,
    extractor: PacketExtractor,
    #[allow(dead_code)]
    cc: CompiledCircuit,
    #[allow(dead_code)]
    watch: WatchList,
    inject_cycle: u64,
}

fn setup() -> Setup {
    let (cc, tb, watch, extractor) =
        MacTestbench::setup(Mac10geConfig::small(), &TrafficConfig::small());
    let golden = GoldenRun::capture(&cc, &tb, &watch);
    let judge = MacJudge::new(extractor.clone(), &golden);
    let inject_cycle = tb.injection_window().start;
    Setup {
        golden,
        judge,
        extractor,
        cc,
        watch,
        inject_cycle,
    }
}

/// Copy the golden trace into a synthetic "faulty" trace we can corrupt.
fn clone_trace(golden: &OutputTrace) -> OutputTrace {
    let mut t = OutputTrace::new(golden.start(), golden.end(), golden.width());
    for c in golden.start()..golden.end() {
        for w in 0..golden.width() {
            t.set_word(w, c, golden.word(w, c));
        }
    }
    t
}

#[test]
fn untouched_trace_is_benign() {
    let s = setup();
    let faulty = clone_trace(&s.golden.trace);
    let g = LaneView::golden(&s.golden.trace);
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(
        s.judge.classify(&g, &f, s.inject_cycle),
        FailureClass::Benign
    );
}

#[test]
fn flipped_payload_bit_is_corruption() {
    let s = setup();
    let mut faulty = clone_trace(&s.golden.trace);
    // Find a cycle delivering payload (valid=watch 0, eop=watch 2 low) and
    // flip a data bit (data bits start at watch offset 4).
    let g = LaneView::golden(&s.golden.trace);
    let cycle = (0..s.golden.trace.end())
        .find(|&c| g.bit(0, c) && !g.bit(2, c))
        .expect("some payload word");
    let word = faulty.word(4, cycle);
    faulty.set_word(4, cycle, word ^ 1); // flip lane 0
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(
        s.judge.classify(&g, &f, s.inject_cycle),
        FailureClass::PayloadCorruption
    );
    // Other lanes are unaffected.
    let f_other = LaneView::faulty(&s.golden.trace, &faulty, 1, None);
    assert_eq!(
        s.judge.classify(&g, &f_other, s.inject_cycle),
        FailureClass::Benign
    );
}

#[test]
fn error_marked_frame_is_frame_loss() {
    let s = setup();
    let mut faulty = clone_trace(&s.golden.trace);
    let g = LaneView::golden(&s.golden.trace);
    // Find an eop delivery (valid & eop) and set the err bit (watch 3).
    let cycle = (0..s.golden.trace.end())
        .find(|&c| g.bit(0, c) && g.bit(2, c))
        .expect("some eop");
    faulty.set_word(3, cycle, faulty.word(3, cycle) | 1);
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(
        s.judge.classify(&g, &f, s.inject_cycle),
        FailureClass::FrameLoss
    );
}

#[test]
fn silenced_tail_is_hang() {
    let s = setup();
    let mut faulty = clone_trace(&s.golden.trace);
    let g = LaneView::golden(&s.golden.trace);
    // Pick an injection point between the first and second received
    // packet, then erase all rx_valid activity after it on lane 0.
    let packets = s.extractor.extract(&g);
    assert!(packets.len() >= 2, "need at least two packets");
    let cut = packets[0].eop_cycle + 1;
    for c in cut..faulty.end() {
        faulty.set_word(0, c, faulty.word(0, c) & !1u64);
    }
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(s.judge.classify(&g, &f, cut), FailureClass::Hang);
}

#[test]
fn dropped_middle_frame_is_frame_loss() {
    let s = setup();
    let mut faulty = clone_trace(&s.golden.trace);
    let g = LaneView::golden(&s.golden.trace);
    let packets = s.extractor.extract(&g);
    assert!(packets.len() >= 3, "need at least three packets");
    // Erase the delivery window of the second packet only (valid low).
    let start = packets[0].eop_cycle + 1;
    let end = packets[1].eop_cycle + 1;
    for c in start..end {
        faulty.set_word(0, c, faulty.word(0, c) & !1u64);
    }
    // Inject before the first packet: received-before-inject is 0, but
    // later frames still arrive, so this is frame loss, not a hang.
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(
        s.judge.classify(&g, &f, s.inject_cycle),
        FailureClass::FrameLoss
    );
}

#[test]
fn spurious_extra_frame_is_corruption() {
    let s = setup();
    let mut faulty = clone_trace(&s.golden.trace);
    let g = LaneView::golden(&s.golden.trace);
    // Append a fabricated frame in the idle tail: one payload word + eop.
    let tail = s.golden.trace.end() - 8;
    faulty.set_word(0, tail, faulty.word(0, tail) | 1); // valid
    faulty.set_word(1, tail, faulty.word(1, tail) | 1); // sop
    faulty.set_word(4, tail, faulty.word(4, tail) | 1); // data bit
    faulty.set_word(0, tail + 1, faulty.word(0, tail + 1) | 1); // valid
    faulty.set_word(2, tail + 1, faulty.word(2, tail + 1) | 1); // eop
    let f = LaneView::faulty(&s.golden.trace, &faulty, 0, None);
    assert_eq!(
        s.judge.classify(&g, &f, s.inject_cycle),
        FailureClass::PayloadCorruption
    );
}
