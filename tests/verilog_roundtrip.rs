//! Cross-crate property: netlists survive a structural-Verilog round trip
//! with identical simulation behaviour.

use ffr_netlist::{verilog, Netlist, NetlistBuilder};
use ffr_sim::{CompiledCircuit, SimState};
use proptest::prelude::*;

/// Compare the full output traces of two netlists under the same stimulus.
fn simulate_equal(a: &Netlist, b: &Netlist, cycles: u64, seed: u64) {
    let ca = CompiledCircuit::compile(a.clone()).expect("compile a");
    let cb = CompiledCircuit::compile(b.clone()).expect("compile b");
    assert_eq!(ca.num_inputs(), cb.num_inputs());
    assert_eq!(ca.num_outputs(), cb.num_outputs());
    let mut sa = SimState::new(&ca);
    let mut sb = SimState::new(&cb);
    let mut lcg = seed | 1;
    for cycle in 0..cycles {
        for i in 0..ca.num_inputs() {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (lcg >> 40) & 1 == 1;
            sa.set_input(&ca, i, v);
            // Input order may differ between the netlists; map by name.
            let name = ca.netlist().net(ca.netlist().primary_inputs()[i]).name();
            let bi = cb.netlist().input_index(name).expect("same inputs");
            sb.set_input(&cb, bi, v);
        }
        sa.eval(&ca);
        sb.eval(&cb);
        for (pname, _) in ca.netlist().primary_outputs() {
            let oa = ca.netlist().output_index(pname).expect("a output");
            let ob = cb.netlist().output_index(pname).expect("b output");
            assert_eq!(
                sa.output_word(&ca, oa) & 1,
                sb.output_word(&cb, ob) & 1,
                "output `{pname}` differs at cycle {cycle}"
            );
        }
        sa.tick(&ca);
        sb.tick(&cb);
    }
}

/// Build a random-but-valid circuit from a compact recipe.
fn build_random(ops: &[u8], width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("fuzz");
    let a = b.input("a", width);
    let c = b.input("c", width);
    let mut exprs = vec![a.clone(), c.clone()];
    for (i, &op) in ops.iter().enumerate() {
        let x = exprs[(op as usize) % exprs.len()].clone();
        let y = exprs[(op as usize / 7) % exprs.len()].clone();
        let e = match op % 6 {
            0 => b.and(&x, &y),
            1 => b.or(&x, &y),
            2 => b.xor(&x, &y),
            3 => b.not(&x),
            4 => b.add(&x, &y).0,
            _ => {
                let sel = b.reduce_xor(&y);
                b.mux(&sel, &x, &y)
            }
        };
        // Sprinkle registers through the expression graph.
        if op % 4 == 0 {
            let r = b.reg(&format!("r{i}"), width);
            b.connect(&r, &e).expect("fresh register");
            exprs.push(r.q());
        } else {
            exprs.push(e);
        }
    }
    let last = exprs.last().expect("non-empty");
    b.output("out", last);
    let parity = b.reduce_xor(&exprs[exprs.len() / 2]);
    b.output("parity", &parity);
    b.finish().expect("fuzz circuit is well formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_roundtrip_and_simulate_identically(
        ops in proptest::collection::vec(0u8..64, 1..20),
        width in 1usize..6,
        seed in any::<u64>(),
    ) {
        let original = build_random(&ops, width);
        let text = verilog::emit(&original);
        let parsed = verilog::parse(&text).expect("parse emitted verilog");
        prop_assert_eq!(original.num_ffs(), parsed.num_ffs());
        simulate_equal(&original, &parsed, 40, seed);
        // Emission is a fixpoint after one round trip.
        prop_assert_eq!(verilog::emit(&parsed), text);
    }
}

/// Every circuit of the standard corpus catalog survives the round trip:
/// emit → parse → re-emit is byte-identical, and the name-based netlist
/// content hash is invariant under the parser's net renumbering — the
/// property `ffr run --circuit verilog:<path>` relies on to fingerprint
/// imported designs by content.
#[test]
fn corpus_catalog_roundtrips_byte_identically() {
    let corpus = ffr_circuits::corpus::Corpus::standard();
    for entry in corpus.entries() {
        let original = entry.build();
        let text = verilog::emit(&original);
        let parsed = verilog::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", entry.id()));
        assert_eq!(
            verilog::emit(&parsed),
            text,
            "{}: emit is not a fixpoint after one round trip",
            entry.id()
        );
        assert_eq!(
            original.content_hash(),
            parsed.content_hash(),
            "{}: content hash not preserved by the round trip",
            entry.id()
        );
        assert_eq!(original.num_cells(), parsed.num_cells(), "{}", entry.id());
        assert_eq!(original.num_ffs(), parsed.num_ffs(), "{}", entry.id());
        assert_eq!(
            original.buses().len(),
            parsed.buses().len(),
            "{}",
            entry.id()
        );
        simulate_equal(&original, &parsed, 48, 0x5EED ^ original.content_hash());
    }
}

#[test]
fn mac_roundtrips_through_verilog() {
    let mac = ffr_circuits::Mac10ge::build(ffr_circuits::Mac10geConfig::small());
    let original = mac.into_netlist();
    let text = verilog::emit(&original);
    let parsed = verilog::parse(&text).expect("parse MAC verilog");
    assert_eq!(original.num_cells(), parsed.num_cells());
    assert_eq!(original.num_ffs(), parsed.num_ffs());
    assert_eq!(original.buses().len(), parsed.buses().len());
    simulate_equal(&original, &parsed, 60, 0xABCD);
}
