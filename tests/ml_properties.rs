//! Property-based tests of the ML library's invariants.

use ffr_ml::metrics::{explained_variance, mae, max_error, r2, rmse};
use ffr_ml::model_selection::{KFold, StratifiedKFold};
use ffr_ml::{
    DecisionTreeRegressor, Distance, KnnRegressor, LinearRegression, Regressor, StandardScaler,
    WeightScheme,
};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MAE <= RMSE <= MAX for any prediction.
    #[test]
    fn metric_ordering(n in 2usize..40, seed in any::<u64>()) {
        let mut lcg = seed | 1;
        let mut gen = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((lcg >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let y: Vec<f64> = (0..n).map(|_| gen()).collect();
        let p: Vec<f64> = (0..n).map(|_| gen()).collect();
        let mae_v = mae(&y, &p);
        let rmse_v = rmse(&y, &p);
        let max_v = max_error(&y, &p);
        prop_assert!(mae_v <= rmse_v + 1e-12, "{mae_v} > {rmse_v}");
        prop_assert!(rmse_v <= max_v + 1e-12, "{rmse_v} > {max_v}");
        // R2 and EV are at most 1.
        prop_assert!(r2(&y, &p) <= 1.0 + 1e-12);
        prop_assert!(explained_variance(&y, &p) <= 1.0 + 1e-12);
    }

    /// Perfect predictions maximise every metric.
    #[test]
    fn perfect_prediction_is_optimal(y in finite_vec(10)) {
        prop_assert_eq!(mae(&y, &y), 0.0);
        prop_assert_eq!(rmse(&y, &y), 0.0);
        prop_assert_eq!(max_error(&y, &y), 0.0);
        prop_assert_eq!(r2(&y, &y), 1.0);
        prop_assert_eq!(explained_variance(&y, &y), 1.0);
    }

    /// OLS residuals are orthogonal to the fitted plane: R² on training
    /// data is never negative (an intercept-only model is always nested).
    #[test]
    fn ols_training_r2_non_negative(
        rows in proptest::collection::vec(finite_vec(3), 5..30),
        coef in finite_vec(3),
        noise_seed in any::<u64>(),
    ) {
        let mut lcg = noise_seed | 1;
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                let noise = ((lcg >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                r.iter().zip(&coef).map(|(a, b)| a * b).sum::<f64>() + noise
            })
            .collect();
        let mut m = LinearRegression::new();
        m.fit(&rows, &y);
        let pred = m.predict(&rows);
        prop_assert!(r2(&y, &pred) >= -1e-9, "r2 = {}", r2(&y, &pred));
    }

    /// k-NN with k = 1 memorises the training set exactly.
    #[test]
    fn knn_k1_memorises(
        rows in proptest::collection::vec(finite_vec(2), 3..20),
        targets_seed in any::<u64>(),
    ) {
        // Deduplicate identical points (they would average).
        let mut rows = rows;
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.dedup();
        let mut lcg = targets_seed | 1;
        let y: Vec<f64> = rows
            .iter()
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                (lcg >> 40) as f64
            })
            .collect();
        let mut m = KnnRegressor::new(1, Distance::Euclidean, WeightScheme::Uniform);
        m.fit(&rows, &y);
        for (r, t) in rows.iter().zip(&y) {
            prop_assert_eq!(m.predict_one(r), *t);
        }
    }

    /// Tree predictions never leave the range of the training targets.
    #[test]
    fn tree_predictions_bounded_by_targets(
        rows in proptest::collection::vec(finite_vec(2), 4..30),
        y in proptest::collection::vec(-10f64..10.0, 30),
        queries in proptest::collection::vec(finite_vec(2), 5),
    ) {
        let n = rows.len().min(y.len());
        let rows = &rows[..n];
        let y = &y[..n];
        let mut t = DecisionTreeRegressor::new(6, 2, 1);
        t.fit(rows, y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in &queries {
            let p = t.predict_one(q);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// Standardized training data has mean ~0 and variance ~1 per column.
    #[test]
    fn scaler_normalises(rows in proptest::collection::vec(finite_vec(3), 3..40)) {
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&rows);
        for j in 0..3 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "col {j} mean {mean}");
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            prop_assert!(var < 1.0 + 1e-6, "col {j} var {var}");
        }
    }

    /// Every k-fold split is a partition; stratified folds have balanced
    /// sizes.
    #[test]
    fn folds_partition(n in 10usize..200, k in 2usize..8, seed in any::<u64>()) {
        prop_assume!(n >= k);
        for folds in [
            KFold::new(k, seed).split(n),
            StratifiedKFold::new(k, seed).split(&(0..n).map(|i| i as f64).collect::<Vec<_>>()),
        ] {
            let mut count = vec![0usize; n];
            for (train, test) in &folds {
                prop_assert_eq!(train.len() + test.len(), n);
                for &t in test {
                    count[t] += 1;
                }
                // No leakage.
                let train_set: std::collections::HashSet<_> = train.iter().collect();
                for t in test {
                    prop_assert!(!train_set.contains(t));
                }
            }
            prop_assert!(count.iter().all(|&c| c == 1));
        }
    }
}
