//! Property-based and invariant tests of the fault-injection engine
//! against the bit-parallel simulator.

use ffr_fault::{Campaign, CampaignConfig, FailureClass, FailureJudge, OutputMismatchJudge};
use ffr_netlist::{FfId, NetlistBuilder};
use ffr_sim::{CompiledCircuit, GoldenRun, InputFrame, LaneView, Stimulus, WatchList};
use proptest::prelude::*;

struct AlwaysOn(u64);

impl Stimulus for AlwaysOn {
    fn num_cycles(&self) -> u64 {
        self.0
    }

    fn drive(&self, _c: u64, f: &mut InputFrame) {
        f.set(0, true);
    }
}

fn lfsr_circuit() -> CompiledCircuit {
    CompiledCircuit::compile(ffr_circuits::small::lfsr_pipeline(8, 3)).unwrap()
}

#[test]
fn every_lfsr_ff_is_critical() {
    // An LFSR with a full-width output has no masking at all: every SEU in
    // the LFSR register permanently shifts the sequence, every SEU in the
    // pipeline corrupts three output cycles.
    let cc = lfsr_circuit();
    let watch = WatchList::all(&cc);
    let judge = OutputMismatchJudge::new();
    let stim = AlwaysOn(120);
    let campaign = Campaign::new(&cc, &stim, &watch, &judge);
    let config = CampaignConfig::new(5..100).with_injections(12).with_seed(3);
    let table = campaign.run(&config);
    for (ff, _) in cc.netlist().ffs() {
        assert_eq!(
            table.fdr(ff),
            Some(1.0),
            "{} must always fail",
            cc.netlist().ff_name(ff)
        );
    }
    assert_eq!(table.circuit_fdr(), 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The campaign engine with 64-lane batching, checkpoint restart and
    /// early exit must agree with a naive one-fault-per-run reference
    /// simulation.
    #[test]
    fn batched_campaign_equals_naive_simulation(
        ff_index in 0usize..8,
        seed in any::<u64>(),
    ) {
        // Small circuit: 4-bit counter + 4-bit dead register.
        let mut b = NetlistBuilder::new("p");
        let en = b.input("en", 1);
        let live = b.reg("live", 4);
        let next = b.inc(&live.q());
        b.connect_en(&live, &en, &next).unwrap();
        b.output("v", &live.q());
        let dead = b.reg("dead", 4);
        let dnext = b.inc(&dead.q());
        b.connect(&dead, &dnext).unwrap();
        let red = b.reduce_xor(&dead.q());
        let zero = b.zero_bit();
        let masked = b.and(&red, &zero);
        b.output("m", &masked);
        let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();

        let watch = WatchList::all(&cc);
        let judge = OutputMismatchJudge::new();
        let stim = AlwaysOn(60);
        let campaign = Campaign::new(&cc, &stim, &watch, &judge);
        let config = CampaignConfig::new(5..55).with_injections(20).with_seed(seed);
        let ff = FfId::from_index(ff_index);
        let engine_result = campaign.run_ff(ff, &config);

        // Naive reference: one scalar simulation per injection time.
        let times = ffr_fault::sample_injection_times(seed, ff_index as u64, 5..55, 20);
        let golden = GoldenRun::capture(&cc, &stim, &watch);
        let mut naive_failures = 0usize;
        for &t in &times {
            let mut state = ffr_sim::SimState::new(&cc);
            let mut frame = InputFrame::new(cc.num_inputs());
            let mut trace = ffr_sim::OutputTrace::new(0, 60, watch.len());
            for cycle in 0..60u64 {
                frame.clear();
                stim.drive(cycle, &mut frame);
                frame.apply(&cc, &mut state);
                if cycle == t {
                    state.flip_ff(&cc, ff, 1); // lane 0 only
                }
                state.eval(&cc);
                trace.record(&cc, &watch, &state);
                state.tick(&cc);
            }
            let g = LaneView::golden(&golden.trace);
            let f = LaneView::faulty(&golden.trace, &trace, 0, None);
            if judge.classify(&g, &f, t) != FailureClass::Benign {
                naive_failures += 1;
            }
        }
        prop_assert_eq!(engine_result.failures(), naive_failures);
    }

    /// FDR is monotone in observability: a fully observed register cannot
    /// have a lower FDR than the same register with masked outputs.
    #[test]
    fn observability_monotonicity(width in 2usize..6, seed in any::<u64>()) {
        let build = |observed_bits: usize| {
            let mut b = NetlistBuilder::new("obs");
            let en = b.input("en", 1);
            let r = b.reg("r", width);
            let next = b.inc(&r.q());
            b.connect_en(&r, &en, &next).unwrap();
            b.output("v", &r.q().slice(0..observed_bits));
            CompiledCircuit::compile(b.finish().unwrap()).unwrap()
        };
        let full = build(width);
        let partial = build(1);
        let stim = AlwaysOn(50);
        let judge = OutputMismatchJudge::new();
        let config = CampaignConfig::new(5..45).with_injections(16).with_seed(seed);
        let wf = WatchList::all(&full);
        let wp = WatchList::all(&partial);
        let cf = Campaign::new(&full, &stim, &wf, &judge).run(&config);
        let cp = Campaign::new(&partial, &stim, &wp, &judge).run(&config);
        for i in 0..width {
            let ff = FfId::from_index(i);
            prop_assert!(
                cf.fdr(ff).unwrap() >= cp.fdr(ff).unwrap(),
                "bit {i}: full {:?} < partial {:?}",
                cf.fdr(ff),
                cp.fdr(ff)
            );
        }
    }
}

#[test]
fn set_derating_never_exceeds_seu_on_latch_input() {
    // A SET on the D input only matters when latched; an SEU on the same
    // flip-flop always lands. So SET derating <= SEU derating there.
    let mut b = NetlistBuilder::new("sd");
    let en = b.input("en", 1);
    let r = b.reg("r", 4);
    let next = b.inc(&r.q());
    b.connect_en(&r, &en, &next).unwrap();
    b.output("v", &r.q());
    let d_net = b.gate(ffr_netlist::CellKind::Buf, &[next.net(0)]);
    let buf_bus = ffr_netlist::Bus::single(d_net);
    b.output("probe", &buf_bus);
    let cc = CompiledCircuit::compile(b.finish().unwrap()).unwrap();

    let stim = AlwaysOn(80);
    let watch = WatchList::by_names(&cc, &["v[0]", "v[1]", "v[2]", "v[3]"]);
    let judge = OutputMismatchJudge::new();
    let times: Vec<u64> = (10..60).collect();

    let campaign = Campaign::new(&cc, &stim, &watch, &judge);
    let config = CampaignConfig::new(10..60).with_injections(50).with_seed(1);
    let seu = campaign.run_ff(FfId::from_index(0), &config);

    // Same unified engine, SET fault model, explicit per-cycle plan.
    let d = cc.netlist().ff_d_net(FfId::from_index(0));
    let counts = campaign.run_point_times(ffr_fault::InjectionPoint::Set(d), &times, &config);
    let set = ffr_fault::NetSetResult::new(d, counts);

    assert!(
        set.derating() <= seu.fdr() + 0.2,
        "SET {} should not exceed SEU {} by much",
        set.derating(),
        seu.fdr()
    );
}
