//! Umbrella crate for the FFR (Functional Failure Rate) reproduction
//! workspace.
//!
//! This crate re-exports the public APIs of the workspace members so the
//! examples and integration tests can use a single dependency. See the
//! individual crates for the actual functionality:
//!
//! * [`ffr_netlist`] — gate-level netlist substrate,
//! * [`ffr_sim`] — levelized bit-parallel logic simulator,
//! * [`ffr_circuits`] — the 10GE-MAC-like circuit and component library,
//! * [`ffr_fault`] — unified statistical SEU/SET fault-injection engine,
//! * [`ffr_features`] — per-flip-flop feature extraction,
//! * [`ffr_ml`] — from-scratch supervised regression library,
//! * [`ffr_core`] — the DSN 2019 estimation methodology,
//! * [`ffr_campaign`] — checkpointed, resumable, adaptively-sampled
//!   campaign orchestration, the on-disk artifact store and the `ffr` CLI.

pub use ffr_campaign as campaign;
pub use ffr_circuits as circuits;
pub use ffr_core as core;
pub use ffr_fault as fault;
pub use ffr_features as features;
pub use ffr_ml as ml;
pub use ffr_netlist as netlist;
pub use ffr_sim as sim;
